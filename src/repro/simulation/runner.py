"""The longitudinal project simulator.

:class:`LongitudinalRunner` plays a :class:`~repro.simulation.scenario.Scenario`
over the full world model: it builds the consortium, framework and
collaboration network, schedules every plenary on the discrete-event
engine, applies tie decay / energy recovery / follow-up ageing between
events, and records a :class:`PlenaryRecord` per meeting plus end-of-run
totals.  This is the machinery behind the headline benchmark (hackathon
vs. traditional plenaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analytics.knowledge_flow import KnowledgeFlowTracker
from repro.analytics.trajectory import Trajectory, TrajectoryPoint
from repro.consortium.consortium import Consortium
from repro.consortium.presets import megamart2
from repro.core.prerequisites import PrerequisiteReport
from repro.dissemination.review import ReviewMeeting, ReviewVerdict
from repro.dissemination.showcase import DisseminationRegistry
from repro.core.event import HackathonConfig, HackathonEvent
from repro.core.followup import FollowUpRegistry
from repro.core.outcomes import HackathonOutcome
from repro.core.risks import BurnoutModel
from repro.core.session import WorkSession
from repro.core.teams import (
    BalancedFormation,
    RandomFormation,
    SubscriptionBasedFormation,
    TeamFormationPolicy,
)
from repro.errors import ConfigurationError
from repro.evaluation.comments import Comment, CommentGenerator, sentiment_histogram
from repro.evaluation.questionnaire import (
    Questionnaire,
    QuestionnaireResult,
    plenary_acceptance_items,
)
from repro.evaluation.survey import PlenarySurvey, SurveyOutcome
from repro.framework.catalog import FrameworkModel, build_framework
from repro.meetings.agenda import (
    Agenda,
    SessionFormat,
    hackathon_agenda,
    interleaved_agenda,
    traditional_agenda,
)
from repro.meetings.mode import MODE_EFFECTS, MeetingMode, ModeEffects
from repro.meetings.plenary import MeetingResult, MeetingSession, PlenaryMeeting
from repro.cognition.learning import LearningModel
from repro.network.dynamics import TieDynamics
from repro.network.graph import CollaborationNetwork
from repro.project.builder import build_workplan
from repro.project.workpackages import WorkPlan
from repro.network.metrics import NetworkMetrics, compute_metrics
from repro.obs import REGISTRY, span
from repro.simulation.engine import Engine
from repro.simulation.scenario import PlenarySpec, Scenario
from repro.rng import RngHub, choice_without_replacement

__all__ = [
    "PlenaryRecord",
    "ProjectHistory",
    "LongitudinalRunner",
    "adversarial_factors",
    "effective_mode_effects",
]

_SIM_RUNS = REGISTRY.counter(
    "sim_runs_total",
    help="Complete longitudinal runs finished in this process",
)
_SIM_RUN_SECONDS = REGISTRY.histogram(
    "sim_run_seconds",
    help="Wall time of one LongitudinalRunner.run()",
)

_POLICIES: Dict[str, Callable[[], TeamFormationPolicy]] = {
    "subscription": SubscriptionBasedFormation,
    "balanced": BalancedFormation,
    "random": RandomFormation,
}


def effective_mode_effects(
    scenario: Scenario, spec: PlenarySpec
) -> ModeEffects:
    """Compose the plenary's mode defaults with the scenario's scales.

    Classic scenarios (all scales at the identity, no per-participant
    lanes) get the exact ``MODE_EFFECTS`` object back, so nothing in the
    default arithmetic can drift.  With ``spec.remote_share`` set, the
    engagement/intensity attenuation moves to the per-participant lanes
    (see :class:`~repro.meetings.plenary.MeetingSession`); the session
    keeps a *blended* mixing/travel-relief/productivity profile — the
    share-weighted interpolation between the face-to-face reference and
    the virtual lane.
    """
    effects = MODE_EFFECTS[MeetingMode(spec.mode)]
    if spec.remote_share is not None:
        virtual = MODE_EFFECTS[MeetingMode.VIRTUAL]
        share = spec.remote_share
        effects = ModeEffects(
            mixing_factor=1.0 - share * (1.0 - virtual.mixing_factor),
            # Engagement/intensity are applied per participant by the
            # hybrid lanes, not uniformly by the session.
            intensity_factor=1.0,
            engagement_factor=1.0,
            attendance_cost_relief=share * virtual.attendance_cost_relief,
            productivity_factor=(
                1.0 - share * (1.0 - virtual.productivity_factor)
            ),
        )
    if scenario.mixing_scale != 1.0 or scenario.engagement_scale != 1.0:
        effects = ModeEffects(
            mixing_factor=effects.mixing_factor * scenario.mixing_scale,
            intensity_factor=effects.intensity_factor,
            engagement_factor=(
                effects.engagement_factor * scenario.engagement_scale
            ),
            attendance_cost_relief=effects.attendance_cost_relief,
            productivity_factor=effects.productivity_factor,
        )
    return effects


def adversarial_factors(
    scenario: Scenario, consortium: Consortium, hub: RngHub
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Seeded per-member factor maps for adversarial participants.

    Free-riders and knowledge-withholding members are drawn without
    replacement from dedicated substreams, so classic scenarios (both
    shares at zero) consume no randomness and return empty maps.
    """
    member_factors: Dict[str, float] = {}
    outbound_factors: Dict[str, float] = {}
    member_ids = [m.member_id for m in consortium.members]
    if scenario.free_rider_share > 0.0:
        k = int(round(scenario.free_rider_share * len(member_ids)))
        for mid in choice_without_replacement(
            hub.stream("free_riders"), member_ids, k
        ):
            member_factors[mid] = scenario.free_rider_factor
    if scenario.withholding_share > 0.0:
        k = int(round(scenario.withholding_share * len(member_ids)))
        for mid in choice_without_replacement(
            hub.stream("withholding"), member_ids, k
        ):
            outbound_factors[mid] = scenario.withholding_factor
    return member_factors, outbound_factors


@dataclass
class PlenaryRecord:
    """Everything observed at one plenary."""

    spec: PlenarySpec
    meeting: MeetingResult
    outcome: Optional[HackathonOutcome]
    survey: SurveyOutcome
    comments: List[Comment]
    sentiment: Dict[str, int]
    network_metrics: NetworkMetrics
    provider_owner_ties: int
    burnout_rate: float
    mean_energy: float
    applications_started: int
    requirements_coverage: float
    prerequisites: List[PrerequisiteReport] = field(default_factory=list)
    questionnaire: Optional[QuestionnaireResult] = None
    deliverables_completed: int = 0
    deliverable_delay: float = 0.0

    def acceptance_gap(self, item_id: str = "balance_adequate") -> float:
        """Technical-vs-managerial mean-score gap on one Likert item.

        Positive values mean technical staff agree more strongly than
        managers — the asymmetry that plagued traditional plenaries was
        the opposite sign ("the content was too administrative").
        """
        if self.questionnaire is None:
            raise ConfigurationError(
                f"{self.spec.name}: no questionnaire collected"
            )
        return self.questionnaire.group_gap(item_id, "technical", "managerial")


@dataclass
class ProjectHistory:
    """The full trace of one scenario run."""

    scenario: Scenario
    records: List[PlenaryRecord] = field(default_factory=list)
    final_network: Optional[NetworkMetrics] = None
    final_provider_owner_ties: int = 0
    totals: Dict[str, float] = field(default_factory=dict)
    trajectory: Trajectory = field(default_factory=Trajectory)
    knowledge: KnowledgeFlowTracker = field(default_factory=KnowledgeFlowTracker)
    dissemination: Optional[DisseminationRegistry] = None
    review_verdict: Optional[ReviewVerdict] = None
    workplan: Optional[WorkPlan] = None

    def record_for(self, plenary_name: str) -> PlenaryRecord:
        for record in self.records:
            if record.spec.name == plenary_name:
                return record
        raise ConfigurationError(f"no record for plenary {plenary_name!r}")

    def hackathon_records(self) -> List[PlenaryRecord]:
        return [r for r in self.records if r.outcome is not None]


@dataclass
class _PlenaryContext:
    """In-flight plenary state between ``_plenary_begin`` and ``_plenary_finish``."""

    spec: PlenarySpec
    hackathon: Optional[HackathonEvent]
    session: MeetingSession


class LongitudinalRunner:
    """Runs one scenario end to end."""

    def __init__(
        self,
        scenario: Scenario,
        consortium_factory: Optional[Callable[[RngHub], Consortium]] = None,
        framework_factory: Optional[
            Callable[[Consortium, RngHub], FrameworkModel]
        ] = None,
        dynamics: Optional[TieDynamics] = None,
        learning: Optional[LearningModel] = None,
    ) -> None:
        self.scenario = scenario
        with span("sim.setup", scenario=scenario.name, seed=scenario.seed):
            self.hub = RngHub(scenario.seed)
            factory = consortium_factory or (lambda hub: megamart2(hub))
            self.consortium = factory(self.hub)
            fw_factory = framework_factory or (
                lambda consortium, hub: build_framework(consortium, hub)
            )
            self.framework = fw_factory(self.consortium, self.hub)
            self.network = CollaborationNetwork()
            self.followups = FollowUpRegistry()
            self.burnout = BurnoutModel(
                recovery_per_month=scenario.recovery_per_month
            )
            member_factors, outbound_factors = adversarial_factors(
                scenario, self.consortium, self.hub
            )
            self.meeting = PlenaryMeeting(
                self.consortium,
                self.network,
                self.hub,
                dynamics=dynamics,
                learning=learning,
                member_factors=member_factors,
                outbound_factors=outbound_factors,
            )
            self.survey = PlenarySurvey(self.hub)
            self.comment_generator = CommentGenerator(self.hub)
            self.dissemination = DisseminationRegistry(self.hub)
            self.review_meeting = ReviewMeeting(self.hub)
            self.questionnaire = Questionnaire(
                plenary_acceptance_items(), self.hub
            )
            self.workplan = build_workplan(
                self.consortium,
                self.framework,
                self.hub,
                horizon_months=scenario.end_month,
            )
            self._history = ProjectHistory(
                scenario=scenario, dissemination=self.dissemination
            )
            self._history.knowledge.snapshot(self.consortium, "start")
            self._history.workplan = self.workplan
            self._last_event_month = 0.0
            self._events_run = 0
            # Batch lanes flip this on to route hackathon sessions,
            # voting and surveys through their stacked fast paths
            # (bit-equal by construction; pinned by the equivalence
            # tests).  The scalar path keeps the reference kernels.
            self._fast_paths = False

    # -- public -----------------------------------------------------------

    def run(self) -> ProjectHistory:
        """Simulate the whole timeline and return the history."""
        with span("sim.run", scenario=self.scenario.name,
                  seed=self.scenario.seed):
            with _SIM_RUN_SECONDS.time():
                engine = Engine()
                for spec in self.scenario.plenaries:
                    engine.schedule_at(
                        spec.month,
                        f"plenary:{spec.name}",
                        lambda eng, spec=spec: self._run_plenary(eng, spec),
                    )
                end = self.scenario.end_month
                engine.schedule_at(end, "horizon", self._close_horizon)
                engine.run(until=end)
                with span("sim.finalize"):
                    self._finalize_totals()
        _SIM_RUNS.inc()
        return self._history

    # -- event handlers -----------------------------------------------------

    def _run_plenary(self, engine: Engine, spec: PlenarySpec) -> None:
        REGISTRY.counter(
            "sim_plenaries_total",
            help="Plenary meetings simulated, by agenda kind",
            kind=spec.kind,
        ).inc()
        with span("sim.plenary", plenary=spec.name, kind=spec.kind):
            self._run_plenary_impl(engine.now, spec)

    def _run_plenary_impl(self, now: float, spec: PlenarySpec) -> None:
        self._apply_inter_event_period(now)
        ctx = self._plenary_begin(spec)
        with span("sim.plenary.exchange", plenary=spec.name):
            session = ctx.session
            for item in session.agenda:
                session.apply_item(session.prepare_item(item))
        self._plenary_finish(now, ctx)

    def _plenary_begin(self, spec: PlenarySpec) -> _PlenaryContext:
        """Open the meeting session (agenda, hackathon wiring, attendance).

        The world must already be aged to the plenary's month — the
        scalar path does that in :meth:`_run_plenary_impl`, the batched
        path in lockstep across lanes before touching any session.
        """
        agenda = self._agenda_for(spec)
        hackathon: Optional[HackathonEvent] = None
        handler = None
        if spec.is_hackathon:
            hackathon = self._build_hackathon(spec)
            handler = hackathon.as_handler()
        session = self.meeting.begin(
            agenda, spec.name, handler, mode=MeetingMode(spec.mode),
            effects=effective_mode_effects(self.scenario, spec),
            remote_share=spec.remote_share,
        )
        return _PlenaryContext(spec=spec, hackathon=hackathon, session=session)

    def _plenary_finish(self, now: float, ctx: _PlenaryContext) -> None:
        """Everything after the exchange: surveys, records, review."""
        spec, hackathon = ctx.spec, ctx.hackathon
        result = ctx.session.finish()
        outcome = None
        if hackathon is not None and hackathon.teams is not None:
            outcome = hackathon.finalize(
                self.consortium.subset_members(result.attendee_ids)
            )

        with span("sim.plenary.observe", plenary=spec.name):
            with span("sim.plenary.survey", plenary=spec.name):
                survey = (
                    self.survey.collect_fast(result)
                    if self._fast_paths
                    else self.survey.collect(result)
                )
            questionnaire_result = self._collect_questionnaire(result)
            comments = self.comment_generator.generate_all(
                self._comment_engagements(result, spec), context=spec.name
            )
        if outcome is not None:
            # The paper's rule: audience-voted showcases feed the
            # project's dissemination activities through every channel.
            for showcase in self.dissemination.register_outcome(outcome):
                self.dissemination.publish_everywhere(showcase.showcase_id)

        members = self.consortium.members
        with span("sim.plenary.metrics", plenary=spec.name):
            network_metrics = compute_metrics(self.network)
        record = PlenaryRecord(
            spec=spec,
            meeting=result,
            outcome=outcome,
            survey=survey,
            comments=comments,
            sentiment=sentiment_histogram(comments),
            network_metrics=network_metrics,
            provider_owner_ties=self._provider_owner_tie_count(),
            burnout_rate=BurnoutModel.burnout_rate(members),
            mean_energy=BurnoutModel.mean_energy(members),
            applications_started=self.framework.matrix.applications_started(),
            requirements_coverage=self.framework.requirements.coverage(),
            prerequisites=(
                list(hackathon.prerequisite_reports) if hackathon else []
            ),
            questionnaire=questionnaire_result,
            deliverables_completed=sum(
                1 for d in self.workplan.deliverables() if d.is_complete
            ),
            deliverable_delay=self.workplan.mean_delay(now),
        )
        self._history.records.append(record)
        self._history.knowledge.snapshot(self.consortium, spec.name)
        self._record_trajectory_point(now, event=spec.name)
        self._events_run += 1

        # "Presented in the first official review meeting of the
        # project" (Sec. VI): the panel convenes after the first
        # hackathon plenary.
        if (
            outcome is not None
            and self._history.review_verdict is None
            and self.dissemination.showcases
        ):
            self._history.review_verdict = self.review_meeting.review(
                self.dissemination.showcases,
                record.prerequisites,
                record.applications_started,
            )

    def _close_horizon(self, engine: Engine) -> None:
        self._apply_inter_event_period(engine.now)

    # -- helpers --------------------------------------------------------------

    def _agenda_for(self, spec: PlenarySpec) -> Agenda:
        if spec.kind == "interleaved":
            return interleaved_agenda(
                days=spec.days,
                session_hours=spec.session_hours,
                sessions_per_day=spec.sessions,
            )
        if spec.kind == "hackathon":
            return hackathon_agenda(
                days=spec.days,
                session_hours=spec.session_hours,
                sessions=spec.sessions,
            )
        return traditional_agenda(days=spec.days)

    def _build_hackathon(self, spec: PlenarySpec) -> HackathonEvent:
        config = HackathonConfig(
            event_id=spec.name,
            time_box_hours=spec.session_hours,
            sessions=spec.sessions,
            per_owner_challenges=self.scenario.per_owner_challenges,
            followup_enabled=self.scenario.followup_enabled,
        )
        policy = _POLICIES[self.scenario.team_policy]()
        # A virtual/hybrid plenary slows down team work: scale the work
        # session's base productivity by the (possibly plugin-composed)
        # mode factor.
        effects = effective_mode_effects(self.scenario, spec)
        work_session = WorkSession(self.hub)
        if effects.productivity_factor < 1.0:
            work_session = WorkSession(
                self.hub,
                productivity_per_hour=(
                    work_session.productivity_per_hour
                    * effects.productivity_factor
                ),
            )
        return HackathonEvent(
            consortium=self.consortium,
            framework=self.framework,
            hub=self.hub,
            config=config,
            team_policy=policy,
            work_session=work_session,
            followups=self.followups,
            fast_paths=self._fast_paths,
        )

    def _apply_inter_event_period(self, now: float) -> None:
        """Age the world month by month up to ``now``.

        Decay is applied in monthly steps so that follow-up protection
        stops exactly when a plan's horizon expires, not at the end of
        the whole inter-plenary gap.
        """
        remaining = now - self._last_event_month
        current = self._last_event_month
        if remaining > 1e-9:
            with span("sim.inter_event", from_month=current, to_month=now):
                self._age_world(remaining, current)
        self._last_event_month = now

    def _age_world(self, remaining: float, current: float) -> None:
        while remaining > 1e-9:
            step = min(1.0, remaining)
            protected = (
                self.followups.protected_pairs()
                if self.scenario.followup_enabled
                else frozenset()
            )
            self.meeting.dynamics.decay_period(self.network, step, protected)
            self.burnout.recover(self.consortium.members, step)
            self.followups.advance(step)
            remaining -= step
            current += step
            self.workplan.advance_month(current, self.consortium, self.network)
            self._record_trajectory_point(current)

    def _record_trajectory_point(
        self,
        month: float,
        event: Optional[str] = None,
        mean_energy: Optional[float] = None,
    ) -> None:
        """Append one trajectory sample.

        The batched ageing loop passes ``mean_energy`` computed from
        its stacked recovery arrays (same values, same sum order); the
        scalar path reads the roster.
        """
        if mean_energy is None:
            mean_energy = BurnoutModel.mean_energy(self.consortium.members)
        with span("sim.trajectory", month=month):
            self._history.trajectory.record(
                TrajectoryPoint(
                    month=month,
                    inter_org_ties=len(self.network.inter_org_ties()),
                    total_tie_strength=self.network.total_strength(),
                    mean_energy=mean_energy,
                    event=event,
                )
            )

    def _collect_questionnaire(
        self, result: MeetingResult
    ) -> QuestionnaireResult:
        """Administer the Sec. V-B acceptance questionnaire.

        Each attendee's disposition blends their mean and peak
        engagement (as in the yes/no survey); groups split technical
        versus managerial staff so the "adequacy of the plenary tuning
        among technical and managerial sections" can be read off.
        """
        per_member: Dict[str, List[float]] = {}
        for rec in result.engagement_records:
            per_member.setdefault(rec.member_id, []).append(rec.engagement)
        dispositions = {
            mid: 0.5 * (sum(vals) / len(vals)) + 0.5 * max(vals)
            for mid, vals in per_member.items()
        }
        groups = {
            mid: (
                "technical"
                if self.consortium.member(mid).is_technical
                else "managerial"
            )
            for mid in dispositions
        }
        return self.questionnaire.administer(dispositions, groups)

    @staticmethod
    def _comment_engagements(
        result: MeetingResult, spec: PlenarySpec
    ) -> Dict[str, float]:
        """Engagement levels driving each attendee's free-text comment.

        The paper's Fig. 4 collects comments *on the hackathon*, so at a
        hackathon plenary the comment tone follows each member's
        engagement during the hackathon sessions specifically; at a
        traditional plenary it follows the whole-meeting mean.
        """
        if spec.is_hackathon:
            per_member: Dict[str, List[float]] = {}
            for rec in result.engagement_records:
                if rec.format is SessionFormat.HACKATHON:
                    per_member.setdefault(rec.member_id, []).append(
                        rec.engagement
                    )
            if per_member:
                return {
                    mid: sum(v) / len(v) for mid, v in per_member.items()
                }
        return result.engagement_by_member()

    def _provider_owner_tie_count(self) -> int:
        providers = [o.org_id for o in self.consortium.tool_providers]
        owners = [o.org_id for o in self.consortium.case_study_owners]
        return len(self.network.ties_between_roles(providers, owners))

    def _finalize_totals(self) -> None:
        history = self._history
        history.final_network = compute_metrics(self.network)
        history.final_provider_owner_ties = self._provider_owner_tie_count()
        records = history.records
        history.totals = {
            "knowledge_transferred": sum(
                r.meeting.knowledge_transferred for r in records
            ),
            "new_ties": sum(len(r.meeting.new_ties) for r in records),
            "new_inter_org_ties": sum(
                len(r.meeting.new_inter_org_ties) for r in records
            ),
            "new_provider_owner_ties": sum(
                len(r.meeting.new_provider_owner_ties) for r in records
            ),
            "applications_started": (
                records[-1].applications_started if records else 0
            ),
            "requirements_coverage": (
                records[-1].requirements_coverage if records else 0.0
            ),
            "final_inter_org_ties": (
                history.final_network.inter_org_ties
                if history.final_network
                else 0
            ),
            "final_provider_owner_ties": history.final_provider_owner_ties,
            "mean_meeting_engagement": (
                sum(r.meeting.mean_engagement() for r in records) / len(records)
                if records
                else 0.0
            ),
            "final_burnout_rate": BurnoutModel.burnout_rate(
                self.consortium.members
            ),
            "demos_total": sum(
                len(r.outcome.demos) for r in records if r.outcome
            ),
            "convincing_demos": sum(
                len(r.outcome.convincing_demos()) for r in records if r.outcome
            ),
            "dissemination_reach": float(self.dissemination.total_reach()),
            "knowledge_growth": history.knowledge.total_growth(),
            "review_score": (
                history.review_verdict.mean_overall
                if history.review_verdict
                else 0.0
            ),
            "deliverables_completed": float(
                sum(1 for d in self.workplan.deliverables() if d.is_complete)
            ),
            "deliverable_on_time_rate": self.workplan.on_time_rate(),
            "deliverable_mean_delay": self.workplan.mean_delay(
                self.scenario.end_month
            ),
        }
