"""Batch-of-seeds vectorized execution: N seeds as one stacked computation.

The scalar path (:class:`~repro.simulation.runner.LongitudinalRunner`)
replays one scenario per seed, and every layer above it — ``replicate``,
sweeps, the run store, the job scheduler — pays that cost once per seed.
This module runs all seeds of one scenario *in lockstep*: every lane
keeps its own world (consortium, network, RNG hub — one independent RNG
lane per seed), but the simulation advances event by event across all
lanes at once, and the knowledge-exchange inner loop — the hottest
kernel — runs as a single structure-of-arrays NumPy computation over
every lane's participants (:class:`BatchState`).  Energy recovery is
likewise stacked across lanes, and tie decay shares one factor
computation through :meth:`~repro.network.dynamics.TieDynamics.decay_period_many`.

**Bit-equality contract.**  Each lane's results are bit-identical to a
scalar ``LongitudinalRunner(scenario.with_seed(seed)).run()``:

* lanes only ever share *read-only* state (model constants), so
  interleaving their steps cannot change any lane's arithmetic;
* every vectorized expression reproduces the scalar path's IEEE-754
  operations in the same order — sums and dot products accumulate
  column by column (left to right, like the scalar loops), the rate
  product keeps the scalar's grouping, and only operations verified
  bit-equal to their ``math``/builtin counterparts are vectorized
  (``sqrt``, ``min``/``max`` clamps, ``where`` blends; notably **not**
  ``np.exp``/``np.power``, which stay scalar per interaction);
* the stacked matrix pads lanes to a common domain-count width, and
  padding columns stay exactly zero, contributing exact-zero terms.

``tests/test_perf_equivalence.py`` pins this contract for every KPI.

The batch path only accepts scenarios that are identical except for the
seed and runners built from the default factories; anything else (a
custom ``runner_factory``, mixed scenario families, a single seed) falls
back to the scalar path and counts the reason in
``batch_fallback_total``.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cognition.knowledge import KnowledgeVector
from repro.errors import ConfigurationError
from repro.meetings.plenary import MeetingResult, PlenaryMeeting
from repro.network.dynamics import Interaction
from repro.obs import REGISTRY, span
from repro.simulation.runner import LongitudinalRunner, ProjectHistory
from repro.simulation.scenario import PlenarySpec, Scenario
from repro.simulation.template import template_runner

__all__ = [
    "BatchRunner",
    "BatchState",
    "apply_interactions_batch",
    "batchable",
    "record_fallback",
    "run_batch",
    "scenario_family",
]

_BATCH_LANES = REGISTRY.histogram(
    "batch_lanes",
    help="Seed lanes per batched run",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
)
_BATCH_RUN_SECONDS = REGISTRY.histogram(
    "batch_run_seconds",
    help="Wall time of one BatchRunner.run() across all lanes",
)


def record_fallback(reason: str) -> None:
    """Count one batched-backend request served by the scalar path."""
    REGISTRY.counter(
        "batch_fallback_total",
        help="Batch-backend requests that fell back to the scalar path, by reason",
        reason=reason,
    ).inc()


def scenario_family(scenario: Scenario) -> str:
    """Canonical key for "same scenario, any seed".

    Two scenarios with equal family keys simulate the same world and can
    share a batch; only their RNG lanes differ.
    """
    payload = asdict(scenario)
    payload.pop("seed", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def batchable(
    scenarios: Sequence[Scenario], runner_factory: Optional[object] = None
) -> Optional[str]:
    """Why this request cannot batch, or None if it can.

    The reasons double as the ``batch_fallback_total`` counter's label
    values.
    """
    if runner_factory is not None:
        return "runner_factory"
    if len(scenarios) < 2:
        return "single_run"
    if any(s.uses_plugin_modifiers() for s in scenarios):
        # Plugin scenarios (per-member factors, hybrid lanes,
        # withholding) change the exchange arithmetic the stacked kernel
        # reproduces; they run scalar by design.
        return "plugin"
    families = {scenario_family(s) for s in scenarios}
    if len(families) > 1:
        return "mixed_scenarios"
    return None


# ---------------------------------------------------------------------------
# The stacked exchange kernel.
# ---------------------------------------------------------------------------


class BatchState:
    """Structure-of-arrays state for one agenda item across seed lanes.

    All participating members' knowledge rows — from every lane — live
    in one dense ``(total_members, max_width)`` matrix ``K`` with a
    parallel vector of cached norms ``N``; each lane owns a contiguous
    block of rows (``offsets``/``counts``) padded on the right to the
    widest lane's domain count (``widths`` keeps each lane's true
    width so write-back can trim the padding off again).
    """

    __slots__ = (
        "K", "N", "offsets", "counts", "widths",
        "lane_members", "lane_index", "start_totals",
    )

    def __init__(
        self, lanes: Sequence[Tuple[PlenaryMeeting, List[Interaction]]]
    ) -> None:
        self.lane_members: List[Dict[str, object]] = []
        self.lane_index: List[Dict[str, int]] = []
        stacks: List[np.ndarray] = []
        self.counts: List[int] = []
        self.widths: List[int] = []
        for meeting, interactions in lanes:
            consortium = meeting.consortium
            members: Dict[str, object] = {}
            for interaction in interactions:
                for mid in (interaction.member_a, interaction.member_b):
                    if mid not in members:
                        members[mid] = consortium.member(mid)
            index = {mid: i for i, mid in enumerate(members)}
            rows = KnowledgeVector.stack(m.knowledge for m in members.values())
            self.lane_members.append(members)
            self.lane_index.append(index)
            stacks.append(rows)
            self.counts.append(rows.shape[0])
            self.widths.append(rows.shape[1])

        width = max(self.widths)
        height = sum(self.counts)
        self.offsets: List[int] = []
        offset = 0
        for count in self.counts:
            self.offsets.append(offset)
            offset += count
        self.K = np.zeros((height, width))
        for off, count, w, rows in zip(
            self.offsets, self.counts, self.widths, stacks
        ):
            self.K[off:off + count, :w] = rows

        # Norms and per-lane starting totals, accumulated column by
        # column so each row's sum associates left to right exactly like
        # the scalar loops (padding columns add exact zeros).
        self.N = np.sqrt(_row_sq_sums(self.K))
        row_sums = _row_sums(self.K).tolist()
        self.start_totals = [
            sum(row_sums[off:off + count])
            for off, count in zip(self.offsets, self.counts)
        ]

    def lane_total(self, lane: int) -> float:
        """Current knowledge total of one lane's block (scalar sum order)."""
        row_sums = _row_sums(
            self.K[self.offsets[lane]:self.offsets[lane] + self.counts[lane]]
        ).tolist()
        return sum(row_sums)


def _row_sq_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-row sums of squares, accumulated column by column."""
    acc = matrix[:, 0] * matrix[:, 0]
    for j in range(1, matrix.shape[1]):
        col = matrix[:, j]
        acc += col * col
    return acc


def _row_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-row sums, accumulated column by column (left to right)."""
    acc = matrix[:, 0].copy()
    for j in range(1, matrix.shape[1]):
        acc += matrix[:, j]
    return acc


def apply_interactions_batch(
    entries: Sequence[Tuple[PlenaryMeeting, List[Interaction], MeetingResult]],
) -> None:
    """Cross-lane vectorized ``PlenaryMeeting._apply_interactions``.

    ``entries`` pairs each lane's meeting with the interactions one
    agenda item produced on that lane.  Each lane's interactions are
    packed into conflict-free *waves* — maximal in-order runs in which
    no member appears twice — and wave *w* of every lane is applied in
    one stacked step.  Interactions in one wave touch disjoint rows, so
    applying them together is bitwise identical to applying them one by
    one; conflicting interactions land in later waves, preserving the
    scalar loop's sequential dependency (each exchange shifts the
    cognitive distance the next one sees).
    """
    live = [entry for entry in entries if entry[1]]
    if not live:
        return
    if len(live) == 1:
        meeting, interactions, result = live[0]
        meeting._apply_interactions(interactions, result)
        return
    learning = live[0][0].learning
    if any(meeting.learning != learning for meeting, _, _ in live):
        # Heterogeneous learning models can't share the stacked rate
        # computation; this never happens for BatchRunner-built lanes.
        for meeting, interactions, result in live:
            meeting._apply_interactions(interactions, result)
        return

    state = BatchState([(m, ints) for m, ints, _ in live])
    K, N = state.K, state.N
    width = K.shape[1]
    total = sum(len(interactions) for _, interactions, _ in live)

    # Static per-interaction quantities, gathered lane by lane in the
    # scalar loop's order: gather rows, cultural factors, time factors
    # (math.exp — np.exp is not bit-equal), pair intensities, and the
    # wave each interaction belongs to.
    gather_a = np.empty(total, dtype=np.intp)
    gather_b = np.empty(total, dtype=np.intp)
    factors = np.empty(total)
    time_factors = np.empty(total)
    waves = np.empty(total, dtype=np.intp)
    lane_pairs: List[Dict[Tuple[str, str], float]] = []
    exp = math.exp
    flat = 0
    n_waves = 0
    for lane, (meeting, interactions, _result) in enumerate(live):
        attenuation = meeting.learning.cultural_attenuation
        country_of = meeting._country_of
        culture_distance = meeting.culture.distance
        index = state.lane_index[lane]
        offset = state.offsets[lane]
        cultural_factor: Dict[Tuple[str, str], float] = {}
        pair_intensity: Dict[Tuple[str, str], float] = {}
        wave = 0
        busy: set = set()
        for interaction in interactions:
            id_a, id_b = interaction.member_a, interaction.member_b
            pair = (id_a, id_b) if id_a <= id_b else (id_b, id_a)
            intensity = interaction.intensity
            pair_intensity[pair] = pair_intensity.get(pair, 0.0) + intensity
            if id_a in busy or id_b in busy:
                wave += 1
                busy = set()
            busy.add(id_a)
            busy.add(id_b)
            gather_a[flat] = offset + index[id_a]
            gather_b[flat] = offset + index[id_b]
            factor = cultural_factor.get(pair)
            if factor is None:
                factor = 1.0 - attenuation * culture_distance(
                    country_of[id_a], country_of[id_b]
                )
                cultural_factor[pair] = factor
            factors[flat] = factor
            hours = intensity if intensity > 0.25 else 0.25
            time_factors[flat] = 1.0 - exp(-hours / 2.0)
            waves[flat] = wave
            flat += 1
        lane_pairs.append(pair_intensity)
        n_waves = max(n_waves, wave + 1)

    # Group interactions by wave (stable, so lane-major order survives)
    # and walk the waves; each slice below is one stacked step.
    order = np.argsort(waves, kind="stable")
    gather_a = gather_a[order]
    gather_b = gather_b[order]
    factors = factors[order]
    time_factors = time_factors[order]
    bounds = np.cumsum(np.bincount(waves, minlength=n_waves)).tolist()

    max_rate = learning.max_transfer_rate
    start = 0
    for stop in bounds:
        if stop == start:
            continue
        idx_a = gather_a[start:stop]
        idx_b = gather_b[start:stop]
        wave_factors = factors[start:stop]
        wave_times = time_factors[start:stop]
        start = stop
        stacked = np.concatenate([idx_a, idx_b])
        rows = K[stacked]
        half = idx_a.shape[0]
        rows_a, rows_b = rows[:half], rows[half:]
        norms = N[stacked]
        na, nb = norms[:half], norms[half:]

        # Cognitive distance, dot accumulated column by column like the
        # scalar zip loop; zero-norm rows pin distance to 1.0.
        products = rows_a * rows_b
        dot = products[:, 0].copy()
        for j in range(1, width):
            dot += products[:, j]
        den = na * nb
        valid = den > 0.0
        ratio = dot / np.where(valid, den, 1.0)
        distance = np.where(
            valid, 1.0 - np.minimum(1.0, np.maximum(0.0, ratio)), 1.0
        )
        # Same grouping as the scalar product:
        # ((max_rate * lv) * cultural) * time.
        rate = (
            (max_rate * learning.learning_values(distance))
            * wave_factors
        ) * wave_times

        # Mutual absorb toward the domain-wise max; a zero rate is a
        # bitwise no-op, so the scalar path's ``rate == 0`` skip needs
        # no special case.
        gain = rate[:, None]
        new_a = np.where(rows_b > rows_a, rows_a + gain * (rows_b - rows_a), rows_a)
        new_b = np.where(rows_a > rows_b, rows_b + gain * (rows_a - rows_b), rows_b)
        new_rows = np.concatenate([new_a, new_b])
        K[stacked] = new_rows
        N[stacked] = np.sqrt(_row_sq_sums(new_rows))

    # Per-lane epilogue, matching the scalar kernel's order exactly.
    for lane, (meeting, _interactions, result) in enumerate(live):
        result.knowledge_transferred += (
            state.lane_total(lane) - state.start_totals[lane]
        )
        members = state.lane_members[lane]
        index = state.lane_index[lane]
        offset = state.offsets[lane]
        lane_width = state.widths[lane]
        block = K[offset:offset + state.counts[lane], :lane_width]
        for mid, i in index.items():
            members[mid].knowledge = KnowledgeVector._from_array(
                block[i].copy()
            )
        meeting.consortium.bump_knowledge_version()
        strengthen_rate = meeting.dynamics.strengthen_rate
        strengthen = meeting.network.strengthen
        for (id_a, id_b), intensity in lane_pairs[lane].items():
            strengthen(id_a, id_b, strengthen_rate * intensity)


# ---------------------------------------------------------------------------
# Lockstep world ageing.
# ---------------------------------------------------------------------------


def _recover_batch(
    runners: Sequence[LongitudinalRunner], months: float
) -> List[List[float]]:
    """Stacked energy recovery across every lane's roster.

    One clamped array add replaces per-member ``recover_energy`` calls;
    ``min(1.0, e + amount)`` and ``np.minimum`` agree bitwise.  Returns
    each lane's post-recovery energies (roster order) so the trajectory
    point can reuse the stacked result instead of re-reading every
    member object.
    """
    if months < 0:
        raise ConfigurationError(f"months must be >= 0, got {months}")
    rosters = [runner.consortium.members for runner in runners]
    flat = [member for roster in rosters for member in roster]
    if not flat:
        return [[] for _ in runners]
    energies = np.fromiter(
        (member.energy for member in flat), dtype=float, count=len(flat)
    )
    amounts = np.empty(len(flat))
    position = 0
    for runner, roster in zip(runners, rosters):
        amounts[position:position + len(roster)] = (
            runner.burnout.recovery_per_month * months
        )
        position += len(roster)
    energies = np.minimum(1.0, energies + amounts).tolist()
    for member, energy in zip(flat, energies):
        member.energy = energy
    lanes: List[List[float]] = []
    position = 0
    for roster in rosters:
        lanes.append(energies[position:position + len(roster)])
        position += len(roster)
    return lanes


def _age_worlds(runners: Sequence[LongitudinalRunner], now: float) -> None:
    """Lockstep ``_apply_inter_event_period`` across all lanes.

    All lanes replay the same event timeline, so their
    ``_last_event_month`` clocks agree; each monthly step decays every
    lane's ties (sharing one survival-factor computation), recovers
    energy in one stacked pass, then advances follow-ups, the work plan
    and the trajectory lane by lane — the scalar per-lane order.
    """
    last = runners[0]._last_event_month
    remaining = now - last
    current = last
    if remaining > 1e-9:
        with span(
            "sim.inter_event", from_month=current, to_month=now,
            lanes=len(runners),
        ):
            dynamics = runners[0].meeting.dynamics
            while remaining > 1e-9:
                step = min(1.0, remaining)
                dynamics.decay_period_many(
                    (
                        (
                            runner.network,
                            runner.followups.protected_pairs()
                            if runner.scenario.followup_enabled
                            else frozenset(),
                        )
                        for runner in runners
                    ),
                    step,
                )
                lane_energies = _recover_batch(runners, step)
                remaining -= step
                current += step
                for runner, energies in zip(runners, lane_energies):
                    runner.followups.advance(step)
                    runner.workplan.advance_month(
                        current, runner.consortium, runner.network
                    )
                    # Energies are untouched between recovery and the
                    # trajectory point, so the stacked result IS the
                    # roster state BurnoutModel.mean_energy would read.
                    runner._record_trajectory_point(
                        current,
                        mean_energy=(
                            sum(energies) / len(energies) if energies else 0.0
                        ),
                    )
    for runner in runners:
        runner._last_event_month = now


# ---------------------------------------------------------------------------
# The batch runner.
# ---------------------------------------------------------------------------


class BatchRunner:
    """Runs N same-family scenarios (one per seed) in lockstep.

    Emits one :class:`ProjectHistory` per scenario, in input order,
    bit-equal to what ``LongitudinalRunner(scenario).run()`` returns.
    Only default-factory runners batch — callers with a custom
    ``runner_factory`` must stay on the scalar path (see
    :func:`batchable`).
    """

    def __init__(self, scenarios: Sequence[Scenario]) -> None:
        scenarios = list(scenarios)
        if not scenarios:
            raise ConfigurationError("BatchRunner needs at least one scenario")
        if len(scenarios) > 1:
            reason = batchable(scenarios)
            if reason is not None:
                raise ConfigurationError(
                    f"scenarios cannot share a batch: {reason}"
                )
        self.scenarios = scenarios

    def run(self) -> List[ProjectHistory]:
        """Simulate every lane and return their histories in input order."""
        scenario = self.scenarios[0]
        lanes = len(self.scenarios)
        with span("sim.batch", scenario=scenario.name, lanes=lanes):
            with _BATCH_RUN_SECONDS.time():
                _BATCH_LANES.observe(lanes)
                runners = [template_runner(s) for s in self.scenarios]
                for runner in runners:
                    runner._fast_paths = True
                # The scalar engine fires plenaries in (month, insertion)
                # order, then the horizon event; a stable sort replays
                # the identical sequence.
                specs = sorted(scenario.plenaries, key=lambda s: s.month)
                end = scenario.end_month
                for spec in specs:
                    self._run_plenary_lockstep(runners, spec)
                _age_worlds(runners, end)
                with span("sim.finalize", lanes=lanes):
                    for runner in runners:
                        runner._finalize_totals()
        REGISTRY.counter(
            "sim_runs_total",
            help="Complete longitudinal runs finished in this process",
        ).inc(lanes)
        return [runner._history for runner in runners]

    @staticmethod
    def _run_plenary_lockstep(
        runners: Sequence[LongitudinalRunner], spec: PlenarySpec
    ) -> None:
        REGISTRY.counter(
            "sim_plenaries_total",
            help="Plenary meetings simulated, by agenda kind",
            kind=spec.kind,
        ).inc(len(runners))
        now = spec.month
        with span(
            "sim.plenary", plenary=spec.name, kind=spec.kind,
            lanes=len(runners),
        ):
            _age_worlds(runners, now)
            contexts = [runner._plenary_begin(spec) for runner in runners]
            with span(
                "sim.plenary.exchange", plenary=spec.name, lanes=len(runners)
            ):
                lane_items = [list(ctx.session.agenda) for ctx in contexts]
                for k in range(len(lane_items[0])):
                    prepared = [
                        ctx.session.prepare_item(lane_items[lane][k])
                        for lane, ctx in enumerate(contexts)
                    ]
                    apply_interactions_batch(
                        [
                            (runner.meeting, interactions, ctx.session.result)
                            for runner, interactions, ctx in zip(
                                runners, prepared, contexts
                            )
                        ]
                    )
                    for ctx, interactions in zip(contexts, prepared):
                        ctx.session.result.interactions.extend(interactions)
            for runner, ctx in zip(runners, contexts):
                runner._plenary_finish(now, ctx)


def run_batch(scenarios: Sequence[Scenario]) -> List[ProjectHistory]:
    """Convenience wrapper: batch-run ``scenarios`` and return histories."""
    return BatchRunner(scenarios).run()
