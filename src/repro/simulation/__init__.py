"""Simulation driver: engine, scenarios, longitudinal runner, experiments.

Public API:

* :class:`Engine`, :class:`Event` — deterministic discrete-event core.
* :class:`Scenario`, :class:`PlenarySpec` and the timeline factories.
* :class:`LongitudinalRunner`, :class:`ProjectHistory`, :class:`PlenaryRecord`.
* :func:`replicate`, :func:`compare_scenarios`, :class:`ComparisonResult`.
"""

from repro.simulation.engine import Engine, Event
from repro.simulation.experiment import (
    ComparisonResult,
    MetricComparison,
    compare_scenarios,
    comparison_from_metrics,
    extract_metrics,
    replicate,
)
from repro.simulation.runner import (
    LongitudinalRunner,
    PlenaryRecord,
    ProjectHistory,
)
from repro.simulation.sweep import (
    SweepPoint,
    SweepResult,
    run_sweep,
    sweep_from_metrics,
)
from repro.simulation.scenario import (
    PlenarySpec,
    Scenario,
    baseline_timeline,
    hackathon_everywhere_timeline,
    interleaved_timeline,
    megamart_timeline,
    virtual_timeline,
)

__all__ = [
    "ComparisonResult",
    "Engine",
    "Event",
    "LongitudinalRunner",
    "MetricComparison",
    "PlenaryRecord",
    "PlenarySpec",
    "ProjectHistory",
    "Scenario",
    "SweepPoint",
    "SweepResult",
    "baseline_timeline",
    "compare_scenarios",
    "comparison_from_metrics",
    "extract_metrics",
    "hackathon_everywhere_timeline",
    "interleaved_timeline",
    "megamart_timeline",
    "replicate",
    "run_sweep",
    "sweep_from_metrics",
    "virtual_timeline",
]
