"""Content-addressed run store: fingerprints, blobs, manifest, memo.

Every simulator run is deterministic given ``(scenario, seed)``, so its
KPI dictionary can be stored once and served forever.  This package
turns that into infrastructure:

* :mod:`repro.store.fingerprint` — canonical scenario hashing.
* :mod:`repro.store.blobstore` — sharded, atomic, gzip'd object store.
* :mod:`repro.store.index` — JSONL manifest with hit accounting.
* :mod:`repro.store.runcache` — memoized ``replicate`` /
  ``compare_scenarios`` / ``run_sweep`` with resumable sweeps.

Quick use::

    from repro.store import RunCache

    cache = RunCache(".repro-cache")
    result = cache.compare_scenarios(treatment, control, seeds=range(20))
    cache.stats()   # fingerprints, runs, hits, bytes on disk
"""

from repro.store.blobstore import BlobStats, BlobStore
from repro.store.fingerprint import (
    canonical_json,
    config_fingerprint,
    scenario_fingerprint,
    scenario_payload,
    scenario_summary,
)
from repro.store.index import IndexEntry, IndexStats, RunIndex
from repro.store.runcache import DEFAULT_CACHE_DIR, CacheStats, RunCache

__all__ = [
    "BlobStats",
    "BlobStore",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "IndexEntry",
    "IndexStats",
    "RunCache",
    "RunIndex",
    "canonical_json",
    "config_fingerprint",
    "scenario_fingerprint",
    "scenario_payload",
    "scenario_summary",
]
