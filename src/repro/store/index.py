"""JSON-lines manifest mapping fingerprints to cached runs.

The index is the store's directory: one entry per scenario fingerprint
recording a human-readable summary, the seeds cached so far (seed →
blob key), creation / last-use timestamps, and a hit counter.  On disk
it is an append-only JSONL journal — every ``store`` and ``hit`` is one
line, so concurrent appenders interleave whole records and a crashed
writer costs at most its last line.  :meth:`RunIndex.compact` rewrites
the journal as one ``entry`` snapshot per fingerprint.

Unreadable journal lines are skipped on load, mirroring the blob
store's stance: corruption downgrades to a cache miss, never an error.

All public methods are guarded by one :class:`threading.Lock`, so the
serving layer's request threads can record stores and hits against a
shared index without interleaving JSONL appends or corrupting the
in-memory maps.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

__all__ = ["IndexEntry", "IndexStats", "RunIndex"]


@dataclass
class IndexEntry:
    """All cached runs of one scenario fingerprint."""

    fingerprint: str
    scenario: Dict[str, Any] = field(default_factory=dict)
    seeds: Dict[int, str] = field(default_factory=dict)  # seed -> blob key
    created: float = 0.0
    last_used: float = 0.0
    hits: int = 0
    #: Cells computed fresh (every ``store`` journal event is one miss).
    misses: int = 0


@dataclass(frozen=True)
class IndexStats:
    """Aggregate counters over the whole manifest."""

    fingerprints: int
    runs: int
    hits: int
    misses: int = 0


class RunIndex:
    """In-memory view over an append-only JSONL manifest."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._entries: Dict[str, IndexEntry] = {}
        self._lock = threading.Lock()
        self._load()

    # -- journal ----------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="ascii", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn or corrupt line: skip, don't fail
                if isinstance(record, dict):
                    self._apply(record)

    def _apply(self, record: Dict[str, Any]) -> None:
        kind = record.get("event")
        fingerprint = record.get("fingerprint")
        if not isinstance(fingerprint, str):
            return
        if kind == "store":
            entry = self._entries.setdefault(
                fingerprint, IndexEntry(fingerprint=fingerprint)
            )
            entry.scenario = record.get("scenario", entry.scenario)
            entry.seeds[int(record["seed"])] = record["blob"]
            entry.misses += 1  # a stored cell was computed fresh
            ts = float(record.get("ts", 0.0))
            entry.created = entry.created or ts
            entry.last_used = max(entry.last_used, ts)
        elif kind == "hit":
            entry = self._entries.get(fingerprint)
            if entry is not None:
                entry.hits += 1
                entry.last_used = max(
                    entry.last_used, float(record.get("ts", 0.0))
                )
        elif kind == "entry":  # compacted snapshot
            self._entries[fingerprint] = IndexEntry(
                fingerprint=fingerprint,
                scenario=record.get("scenario", {}),
                seeds={
                    int(s): b for s, b in record.get("seeds", {}).items()
                },
                created=float(record.get("created", 0.0)),
                last_used=float(record.get("last_used", 0.0)),
                hits=int(record.get("hits", 0)),
                misses=int(record.get("misses", 0)),
            )

    def _append(self, records: List[Dict[str, Any]]) -> None:
        if not records:
            return
        lines = "".join(
            json.dumps(r, sort_keys=True, separators=(",", ":")) + "\n"
            for r in records
        )
        with self.path.open("a", encoding="ascii") as fh:
            fh.write(lines)

    # -- recording --------------------------------------------------------

    def record_store(
        self,
        fingerprint: str,
        seed: int,
        blob: str,
        scenario: Dict[str, Any],
    ) -> None:
        record = {
            "event": "store",
            "fingerprint": fingerprint,
            "seed": int(seed),
            "blob": blob,
            "scenario": scenario,
            "ts": time.time(),
        }
        with self._lock:
            self._apply(record)
            self._append([record])

    def record_hits(self, pairs: List[tuple]) -> None:
        """Record ``(fingerprint, seed)`` hits in one journal write."""
        now = time.time()
        records = [
            {"event": "hit", "fingerprint": fp, "seed": int(seed), "ts": now}
            for fp, seed in pairs
        ]
        with self._lock:
            for record in records:
                self._apply(record)
            self._append(records)

    # -- queries ----------------------------------------------------------

    def lookup(self, fingerprint: str, seed: int) -> Optional[str]:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return None
            return entry.seeds.get(int(seed))

    def entries(self) -> List[IndexEntry]:
        with self._lock:
            return self._entries_snapshot()

    def _entries_snapshot(self) -> List[IndexEntry]:
        return sorted(self._entries.values(), key=lambda e: e.fingerprint)

    def referenced_blobs(self) -> Set[str]:
        with self._lock:
            return {
                blob
                for entry in self._entries.values()
                for blob in entry.seeds.values()
            }

    def stats(self) -> IndexStats:
        with self._lock:
            return IndexStats(
                fingerprints=len(self._entries),
                runs=sum(len(e.seeds) for e in self._entries.values()),
                hits=sum(e.hits for e in self._entries.values()),
                misses=sum(e.misses for e in self._entries.values()),
            )

    # -- maintenance ------------------------------------------------------

    def drop_blobs(self, dead: Set[str]) -> int:
        """Forget seeds whose blob is in ``dead``; return runs dropped."""
        dropped = 0
        with self._lock:
            for fingerprint in list(self._entries):
                entry = self._entries[fingerprint]
                for seed in [s for s, b in entry.seeds.items() if b in dead]:
                    del entry.seeds[seed]
                    dropped += 1
                if not entry.seeds:
                    del self._entries[fingerprint]
        return dropped

    def compact(self) -> None:
        """Rewrite the journal as one snapshot line per fingerprint."""
        with self._lock:
            records = [
                {
                    "event": "entry",
                    "fingerprint": e.fingerprint,
                    "scenario": e.scenario,
                    "seeds": {str(s): b for s, b in sorted(e.seeds.items())},
                    "created": e.created,
                    "last_used": e.last_used,
                    "hits": e.hits,
                    "misses": e.misses,
                }
                for e in self._entries_snapshot()
            ]
            tmp = self.path.with_name(self.path.name + ".tmp")
            with tmp.open("w", encoding="ascii") as fh:
                for record in records:
                    fh.write(
                        json.dumps(
                            record, sort_keys=True, separators=(",", ":")
                        )
                        + "\n"
                    )
            os.replace(tmp, self.path)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.path.unlink(missing_ok=True)
