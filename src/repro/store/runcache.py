"""Memoized replication backed by the content-addressed run store.

Every run of the longitudinal simulator is fully determined by
``(scenario, seed)``, so its KPI dictionary is a pure function of the
scenario fingerprint and the seed.  :class:`RunCache` exploits that:
it serves previously computed KPI dictionaries from disk and computes
only the missing ``(fingerprint, seed)`` cells, fanning misses out over
the same process pool :func:`~repro.simulation.experiment.replicate`
uses.  Cached results are **bit-identical** to fresh ones — JSON floats
round-trip exactly, and the stored value is exactly what
:func:`~repro.simulation.experiment.extract_metrics` returns.

Because the cache is keyed per cell, interrupted work resumes for free:
re-invoking a killed or extended sweep recomputes only the cells that
never made it to disk.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from concurrent.futures import ProcessPoolExecutor

from repro.errors import ConfigurationError
from repro.simulation.experiment import (
    ComparisonResult,
    _pool_supported,
    _run_history,
    comparison_from_metrics,
    extract_metrics,
)
from repro.simulation.runner import LongitudinalRunner
from repro.simulation.scenario import Scenario
from repro.simulation.sweep import SweepResult, sweep_from_metrics
from repro.store.blobstore import BlobStore
from repro.store.fingerprint import scenario_fingerprint, scenario_summary
from repro.store.index import RunIndex

__all__ = ["CacheStats", "RunCache"]

DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class CacheStats:
    """One snapshot of the store, for ``repro-sim cache stats``."""

    fingerprints: int
    runs: int
    hits_recorded: int
    objects: int
    total_bytes: int


class RunCache:
    """Disk-backed ``(scenario, seed) → KPI dictionary`` memo table.

    Wraps the three experiment entry points — :meth:`replicate`,
    :meth:`compare_scenarios` and :meth:`run_sweep` — behind the store.
    ``workers`` only ever applies to the cells actually computed.
    """

    def __init__(
        self,
        root: os.PathLike = DEFAULT_CACHE_DIR,
        runner_factory: Optional[
            Callable[[Scenario], LongitudinalRunner]
        ] = None,
    ) -> None:
        self.root = os.fspath(root)
        self.blobs = BlobStore(self.root)
        self.index = RunIndex(os.path.join(self.root, "index.jsonl"))
        self.runner_factory = runner_factory
        #: Cells served from disk / computed since this instance opened.
        self.session_hits = 0
        self.session_misses = 0

    # -- core -------------------------------------------------------------

    def fetch_metrics(
        self, scenarios: Sequence[Scenario], workers: int = 1
    ) -> List[Dict[str, float]]:
        """KPI dictionaries for already-seeded scenarios, in input order.

        Hits load from the blob store; misses (including entries whose
        blob turns out corrupt) are computed, stored and returned.
        """
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        fingerprints = [scenario_fingerprint(s) for s in scenarios]
        metrics: List[Optional[Dict[str, float]]] = [None] * len(scenarios)
        missing: List[int] = []
        hit_pairs = []
        for i, (scenario, fingerprint) in enumerate(
            zip(scenarios, fingerprints)
        ):
            blob = self.index.lookup(fingerprint, scenario.seed)
            payload = self.blobs.get(blob) if blob is not None else None
            if payload is None:
                missing.append(i)
            else:
                metrics[i] = payload
                hit_pairs.append((fingerprint, scenario.seed))
        if hit_pairs:
            self.index.record_hits(hit_pairs)
            self.session_hits += len(hit_pairs)
        if missing:
            self._compute_missing(scenarios, fingerprints, metrics,
                                  missing, workers)
        return metrics  # type: ignore[return-value]

    def _compute_missing(
        self,
        scenarios: Sequence[Scenario],
        fingerprints: List[str],
        metrics: List[Optional[Dict[str, float]]],
        missing: List[int],
        workers: int,
    ) -> None:
        """Run the missing cells, persisting each as soon as it lands.

        Per-cell persistence is what makes interrupted work resumable: a
        sweep killed mid-grid keeps every cell that finished, whether
        the runs were serial or pooled.
        """

        def store(i: int, history) -> None:
            computed = extract_metrics(history)
            blob = self.blobs.put(computed)
            self.index.record_store(
                fingerprints[i],
                scenarios[i].seed,
                blob,
                scenario_summary(scenarios[i]),
            )
            # Serve the disk round-trip, not the in-memory dict, so a
            # cold call returns exactly what every warm call will.
            metrics[i] = self.blobs.get(blob, computed)
            self.session_misses += 1

        pending = [scenarios[i] for i in missing]
        if _pool_supported(workers, (pending, self.runner_factory)):
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            ) as pool:
                futures = [
                    pool.submit(_run_history, s, self.runner_factory)
                    for s in pending
                ]
                for i, future in zip(missing, futures):
                    store(i, future.result())
        else:
            for i, scenario in zip(missing, pending):
                store(i, _run_history(scenario, self.runner_factory))

    # -- experiment API ---------------------------------------------------

    def replicate(
        self, scenario: Scenario, seeds: Sequence[int], workers: int = 1
    ) -> List[Dict[str, float]]:
        """KPI dictionaries of ``scenario`` under each seed, memoized."""
        if not seeds:
            raise ConfigurationError("need at least one seed")
        seeded = [scenario.with_seed(int(seed)) for seed in seeds]
        return self.fetch_metrics(seeded, workers=workers)

    def compare_scenarios(
        self,
        scenario_a: Scenario,
        scenario_b: Scenario,
        seeds: Sequence[int],
        workers: int = 1,
    ) -> ComparisonResult:
        """Memoized :func:`~repro.simulation.experiment.compare_scenarios`."""
        if not seeds:
            raise ConfigurationError("need at least one seed")
        seeded = [scenario_a.with_seed(int(s)) for s in seeds] + [
            scenario_b.with_seed(int(s)) for s in seeds
        ]
        metrics = self.fetch_metrics(seeded, workers=workers)
        return comparison_from_metrics(
            scenario_a.name,
            scenario_b.name,
            seeds,
            metrics[: len(seeds)],
            metrics[len(seeds):],
        )

    def run_sweep(
        self,
        parameter_name: str,
        parameter_values: Sequence[object],
        scenario_factory: Callable[[object, int], Scenario],
        seeds: Sequence[int],
        label_fn: Optional[Callable[[object], str]] = None,
        workers: int = 1,
    ) -> SweepResult:
        """Memoized :func:`~repro.simulation.sweep.run_sweep`.

        Resume comes for free: a sweep interrupted mid-grid, or extended
        with new parameter values or seeds, recomputes only the
        ``(value, seed)`` cells absent from the store.
        """
        if not parameter_values:
            raise ConfigurationError(
                "sweep needs at least one parameter value"
            )
        if not seeds:
            raise ConfigurationError("sweep needs at least one seed")
        scenarios = [
            scenario_factory(value, int(seed))
            for value in parameter_values
            for seed in seeds
        ]
        metrics = self.fetch_metrics(scenarios, workers=workers)
        per_point = len(seeds)
        chunks = [
            metrics[i * per_point : (i + 1) * per_point]
            for i in range(len(parameter_values))
        ]
        return sweep_from_metrics(
            parameter_name, parameter_values, chunks, label_fn=label_fn
        )

    # -- maintenance ------------------------------------------------------

    def stats(self) -> CacheStats:
        index_stats = self.index.stats()
        blob_stats = self.blobs.stats()
        return CacheStats(
            fingerprints=index_stats.fingerprints,
            runs=index_stats.runs,
            hits_recorded=index_stats.hits,
            objects=blob_stats.objects,
            total_bytes=blob_stats.total_bytes,
        )

    def gc(self) -> Dict[str, int]:
        """Drop unreferenced blobs and index rows whose blob vanished.

        Returns ``{"blobs_removed": ..., "runs_dropped": ...}``.
        """
        referenced = self.index.referenced_blobs()
        blobs_removed = self.blobs.gc(keep=referenced)
        dead = {key for key in referenced if not self.blobs.has(key)}
        runs_dropped = self.index.drop_blobs(dead) if dead else 0
        self.index.compact()
        return {"blobs_removed": blobs_removed, "runs_dropped": runs_dropped}

    def clear(self) -> None:
        """Delete every object and the manifest."""
        self.index.clear()
        shutil.rmtree(self.blobs.objects_dir, ignore_errors=True)
        self.blobs.objects_dir.mkdir(parents=True, exist_ok=True)
