"""Memoized replication backed by the content-addressed run store.

Every run of the longitudinal simulator is fully determined by
``(scenario, seed)``, so its KPI dictionary is a pure function of the
scenario fingerprint and the seed.  :class:`RunCache` exploits that:
it serves previously computed KPI dictionaries from disk and computes
only the missing ``(fingerprint, seed)`` cells, fanning misses out over
the same process pool :func:`~repro.simulation.experiment.replicate`
uses.  Cached results are **bit-identical** to fresh ones — JSON floats
round-trip exactly, and the stored value is exactly what
:func:`~repro.simulation.experiment.extract_metrics` returns.

Because the cache is keyed per cell, interrupted work resumes for free:
re-invoking a killed or extended sweep recomputes only the cells that
never made it to disk.

The cache is also safe to share across threads: a per-cell
**single-flight** map guarantees that two threads racing on the same
missing ``(fingerprint, seed)`` cell compute it exactly once — the
loser blocks until the winner's result lands in the store and then
reads it back, observing bit-identical KPIs.  This is what lets the
serving layer (:mod:`repro.service`) point many request threads at one
cache.
"""

from __future__ import annotations

import os
import shutil
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import as_completed

from repro.errors import ConfigurationError, RunCancelled, WorkerCrashError
from repro.obs import REGISTRY, span
from repro.simulation.batch import (
    BatchRunner,
    record_fallback,
    scenario_family,
)
from repro.simulation.experiment import (
    ComparisonResult,
    _check_backend,
    _pool_supported,
    _pop_legacy_kwarg,
    _reject_unknown_kwargs,
    _run_history,
    comparison_from_metrics,
    effective_workers,
    extract_metrics,
)
from repro.simulation.runner import LongitudinalRunner
from repro.simulation.scenario import Scenario
from repro.simulation.sweep import SweepResult, sweep_from_metrics
from repro.store.blobstore import BlobStore
from repro.store.fingerprint import scenario_fingerprint, scenario_summary
from repro.store.index import RunIndex

__all__ = ["CacheStats", "RunCache"]

DEFAULT_CACHE_DIR = ".repro-cache"

_HITS = REGISTRY.counter(
    "cache_hits_total",
    help="Cells served from the run store instead of recomputed",
)
_MISSES = REGISTRY.counter(
    "cache_misses_total",
    help="Cells computed fresh and stored",
)
_WAITS = REGISTRY.counter(
    "cache_singleflight_waits_total",
    help="Cells served after waiting on another thread's computation",
)
_BYTES_SERVED = REGISTRY.counter(
    "cache_bytes_served_total",
    help="Compressed bytes read from the store to serve cached cells",
)


@dataclass(frozen=True)
class CacheStats:
    """One snapshot of the store, for ``repro-sim cache stats``."""

    fingerprints: int
    runs: int
    hits_recorded: int
    objects: int
    total_bytes: int
    misses_recorded: int = 0

    @property
    def hit_ratio(self) -> float:
        """Lifetime hits / (hits + misses); 0.0 before any traffic."""
        total = self.hits_recorded + self.misses_recorded
        return self.hits_recorded / total if total else 0.0


class RunCache:
    """Disk-backed ``(scenario, seed) → KPI dictionary`` memo table.

    Wraps the three experiment entry points — :meth:`replicate`,
    :meth:`compare_scenarios` and :meth:`run_sweep` — behind the store.
    ``workers`` only ever applies to the cells actually computed.
    """

    def __init__(
        self,
        root: os.PathLike = DEFAULT_CACHE_DIR,
        runner_factory: Optional[
            Callable[[Scenario], LongitudinalRunner]
        ] = None,
    ) -> None:
        self.root = os.fspath(root)
        self.blobs = BlobStore(self.root)
        self.index = RunIndex(os.path.join(self.root, "index.jsonl"))
        self.runner_factory = runner_factory
        #: Cells served from disk / computed since this instance opened.
        self.session_hits = 0
        self.session_misses = 0
        #: Hits that waited on another thread's in-flight computation.
        self.session_waits = 0
        #: Compressed bytes read back from disk to serve cells.
        self.session_bytes_served = 0
        self._session_lock = threading.Lock()
        # Single-flight map: cells currently being computed by some
        # thread of this process.  Claimants insert an Event; every
        # other thread wanting the same cell waits on it and then
        # re-reads the store instead of recomputing.
        self._inflight: Dict[Tuple[str, int], threading.Event] = {}
        self._inflight_lock = threading.Lock()

    # -- core -------------------------------------------------------------

    def _load_cell(
        self, fingerprint: str, seed: int
    ) -> Optional[Dict[str, float]]:
        blob = self.index.lookup(fingerprint, seed)
        if blob is None:
            return None
        payload, nbytes = self.blobs.load(blob)
        if payload is not None:
            self._count(bytes_served=nbytes)
        return payload

    def _count(
        self,
        hits: int = 0,
        misses: int = 0,
        waits: int = 0,
        bytes_served: int = 0,
    ) -> None:
        with self._session_lock:
            self.session_hits += hits
            self.session_misses += misses
            self.session_waits += waits
            self.session_bytes_served += bytes_served
        if hits:
            _HITS.inc(hits)
        if misses:
            _MISSES.inc(misses)
        if waits:
            _WAITS.inc(waits)
        if bytes_served:
            _BYTES_SERVED.inc(bytes_served)

    def fetch_metrics(
        self,
        scenarios: Sequence[Scenario],
        workers: int = 1,
        on_cell: Optional[Callable[[int, bool], None]] = None,
        should_cancel: Optional[Callable[[], bool]] = None,
        backend: str = "auto",
    ) -> List[Dict[str, float]]:
        """KPI dictionaries for already-seeded scenarios, in input order.

        Hits load from the blob store; misses (including entries whose
        blob turns out corrupt) are computed, stored and returned.
        ``on_cell(i, from_cache)`` fires once per cell as it resolves,
        which is how the serving layer streams per-cell progress.
        ``should_cancel`` is polled between cells; when it turns true
        the call raises :class:`~repro.errors.RunCancelled` — every
        cell already stored stays stored, so a later retry resumes.
        ``backend`` selects the execution engine for the missing cells
        (see :data:`~repro.simulation.experiment.BACKENDS`); cached
        cells are backend-independent because the batched engine is
        bit-equal to the scalar one.
        """
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        _check_backend(backend)
        # ``workers`` is taken at face value here: the library wrappers
        # below clamp to the core count, while the service scheduler
        # passes a pool size chosen to keep crashing runners isolated
        # in worker processes — collapsing it to serial would run them
        # in the server itself.
        with span("store.fetch", cells=len(scenarios), workers=workers):
            fingerprints = [scenario_fingerprint(s) for s in scenarios]
            metrics: List[Optional[Dict[str, float]]] = (
                [None] * len(scenarios)
            )
            missing: List[int] = []
            hit_pairs = []
            for i, (scenario, fingerprint) in enumerate(
                zip(scenarios, fingerprints)
            ):
                payload = self._load_cell(fingerprint, scenario.seed)
                if payload is None:
                    missing.append(i)
                else:
                    metrics[i] = payload
                    hit_pairs.append((fingerprint, scenario.seed))
                    if on_cell is not None:
                        on_cell(i, True)
            if hit_pairs:
                self.index.record_hits(hit_pairs)
                self._count(hits=len(hit_pairs))
            if missing:
                self._resolve_missing(scenarios, fingerprints, metrics,
                                      missing, workers, on_cell,
                                      should_cancel, backend)
        return metrics  # type: ignore[return-value]

    def _resolve_missing(
        self,
        scenarios: Sequence[Scenario],
        fingerprints: List[str],
        metrics: List[Optional[Dict[str, float]]],
        missing: List[int],
        workers: int,
        on_cell: Optional[Callable[[int, bool], None]],
        should_cancel: Optional[Callable[[], bool]],
        backend: str = "auto",
    ) -> None:
        """Claim or await each missing cell, then compute the claims.

        For every cell this call either becomes the single flight that
        computes it, or waits for the thread that already is and then
        serves the freshly stored result as a hit.
        """
        claims: Dict[Tuple[str, int], List[int]] = {}
        waited_pairs = []
        try:
            for i in missing:
                key = (fingerprints[i], scenarios[i].seed)
                if key in claims:  # duplicate cell inside this batch
                    claims[key].append(i)
                    continue
                while True:
                    with self._inflight_lock:
                        event = self._inflight.get(key)
                        if event is None:
                            self._inflight[key] = threading.Event()
                            claims[key] = [i]
                            break
                    event.wait()
                    payload = self._load_cell(*key)
                    if payload is not None:
                        metrics[i] = payload
                        waited_pairs.append(key)
                        if on_cell is not None:
                            on_cell(i, True)
                        break
                    # The other flight failed; loop and claim it ourselves.
            if waited_pairs:
                self.index.record_hits(waited_pairs)
                self._count(hits=len(waited_pairs),
                            waits=len(waited_pairs))
            if claims:
                self._compute_claimed(scenarios, fingerprints, metrics,
                                      claims, workers, on_cell,
                                      should_cancel, backend)
        finally:
            with self._inflight_lock:
                for key in claims:
                    event = self._inflight.pop(key, None)
                    if event is not None:
                        event.set()

    def _compute_claimed(
        self,
        scenarios: Sequence[Scenario],
        fingerprints: List[str],
        metrics: List[Optional[Dict[str, float]]],
        claims: Dict[Tuple[str, int], List[int]],
        workers: int,
        on_cell: Optional[Callable[[int, bool], None]],
        should_cancel: Optional[Callable[[], bool]],
        backend: str = "auto",
    ) -> None:
        """Run the claimed cells, persisting each as soon as it lands.

        Per-cell persistence is what makes interrupted work resumable: a
        sweep killed mid-grid keeps every cell that finished, whether
        the runs were serial or pooled.  A worker-process death
        surfaces as :class:`~repro.errors.WorkerCrashError` so callers
        (the service scheduler) can retry; cells stored before the
        crash are never recomputed.
        """

        def cancelled() -> bool:
            return should_cancel is not None and should_cancel()

        # Double-check after claiming: another thread may have finished
        # (and released) a cell between our initial lookup and the
        # claim, in which case it is already on disk — serve it as a
        # hit instead of recomputing.  Keys stay in ``claims`` so the
        # caller's finally still releases their events.
        landed_pairs = []
        to_compute = []
        for key, indices in claims.items():
            payload = self._load_cell(*key)
            if payload is None:
                to_compute.append(key)
                continue
            for j in indices:
                metrics[j] = payload
                if on_cell is not None:
                    on_cell(j, True)
            landed_pairs.append(key)
        if landed_pairs:
            self.index.record_hits(landed_pairs)
            self._count(hits=len(landed_pairs))
        if not to_compute:
            return

        def store(i: int, history) -> None:
            computed = extract_metrics(history)
            blob = self.blobs.put(computed)
            self.index.record_store(
                fingerprints[i],
                scenarios[i].seed,
                blob,
                scenario_summary(scenarios[i]),
            )
            # Serve the disk round-trip, not the in-memory dict, so a
            # cold call returns exactly what every warm call will.
            payload = self.blobs.get(blob, computed)
            key = (fingerprints[i], scenarios[i].seed)
            for j in claims[key]:
                metrics[j] = payload
                if on_cell is not None:
                    on_cell(j, j != i)
            self._count(misses=1)

        pending = [(claims[key][0], scenarios[claims[key][0]])
                   for key in to_compute]
        if cancelled():
            raise RunCancelled("cancelled before computing cells")
        pooled = _pool_supported(
            workers, ([s for _, s in pending], self.runner_factory)
        )
        if backend == "batch":
            pooled = False  # an explicit batch request wins over a pool
        if pooled:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            ) as pool:
                futures = {
                    pool.submit(_run_history, s, self.runner_factory): i
                    for i, s in pending
                }
                try:
                    for future in as_completed(futures):
                        store(futures[future], future.result())
                        if cancelled():
                            raise RunCancelled("cancelled mid-computation")
                except (BrokenExecutor, BrokenPipeError, EOFError) as exc:
                    raise WorkerCrashError(
                        f"worker process died: {exc!r}"
                    ) from exc
                finally:
                    pool.shutdown(wait=True, cancel_futures=True)
        else:
            self._compute_serial(pending, store, cancelled, backend)

    def _compute_serial(
        self,
        pending: List[Tuple[int, Scenario]],
        store: Callable[[int, Any], None],
        cancelled: Callable[[], bool],
        backend: str,
    ) -> None:
        """Compute pending cells in-process, batching when eligible.

        Under ``backend != "scalar"`` cells of one scenario family run
        through :class:`~repro.simulation.batch.BatchRunner` as a single
        stacked computation; each lane's KPIs still persist per cell, so
        cancellation (polled between groups — a batch is one indivisible
        computation) and resume behave exactly as on the scalar path.
        """
        groups: Optional[Dict[str, List[Tuple[int, Scenario]]]] = None
        if backend != "scalar":
            if self.runner_factory is not None:
                record_fallback("runner_factory")
            elif len(pending) < 2:
                record_fallback("single_run")
            else:
                groups = {}
                for i, scenario in pending:
                    groups.setdefault(
                        scenario_family(scenario), []
                    ).append((i, scenario))
        if groups is None:
            for i, scenario in pending:
                if cancelled():
                    raise RunCancelled("cancelled mid-computation")
                store(i, _run_history(scenario, self.runner_factory))
            return
        for members in groups.values():
            if cancelled():
                raise RunCancelled("cancelled mid-computation")
            if len(members) == 1:
                record_fallback("singleton_family")
                i, scenario = members[0]
                store(i, _run_history(scenario, None))
                continue
            if members[0][1].uses_plugin_modifiers():
                record_fallback("plugin")
                for i, scenario in members:
                    if cancelled():
                        raise RunCancelled("cancelled mid-computation")
                    store(i, _run_history(scenario, None))
                continue
            histories = BatchRunner([s for _, s in members]).run()
            for (i, _), history in zip(members, histories):
                store(i, history)

    # -- experiment API ---------------------------------------------------

    def replicate(
        self,
        scenario: Scenario,
        seeds: Sequence[int],
        workers: int = 1,
        backend: str = "auto",
    ) -> List[Dict[str, float]]:
        """KPI dictionaries of ``scenario`` under each seed, memoized."""
        if not seeds:
            raise ConfigurationError("need at least one seed")
        seeded = [scenario.with_seed(int(seed)) for seed in seeds]
        return self.fetch_metrics(seeded, workers=effective_workers(workers),
                                  backend=backend)

    def compare_scenarios(
        self,
        a: Optional[Scenario] = None,
        b: Optional[Scenario] = None,
        seeds: Sequence[int] = (),
        workers: int = 1,
        backend: str = "auto",
        **legacy: Any,
    ) -> ComparisonResult:
        """Memoized :func:`~repro.simulation.experiment.compare_scenarios`.

        ``scenario_a=``/``scenario_b=`` are deprecated aliases for
        ``a=``/``b=`` and emit a :class:`DeprecationWarning`.
        """
        a = _pop_legacy_kwarg(legacy, "scenario_a", "a", a)
        b = _pop_legacy_kwarg(legacy, "scenario_b", "b", b)
        _reject_unknown_kwargs("compare_scenarios", legacy)
        if a is None or b is None:
            raise ConfigurationError(
                "compare_scenarios needs scenarios a and b"
            )
        if not seeds:
            raise ConfigurationError("need at least one seed")
        seeded = [a.with_seed(int(s)) for s in seeds] + [
            b.with_seed(int(s)) for s in seeds
        ]
        metrics = self.fetch_metrics(seeded,
                                     workers=effective_workers(workers),
                                     backend=backend)
        return comparison_from_metrics(
            a.name,
            b.name,
            seeds,
            metrics[: len(seeds)],
            metrics[len(seeds):],
        )

    def run_sweep(
        self,
        parameter: Optional[str] = None,
        values: Optional[Sequence[object]] = None,
        factory: Optional[Callable[[object, int], Scenario]] = None,
        seeds: Sequence[int] = (),
        label_fn: Optional[Callable[[object], str]] = None,
        workers: int = 1,
        backend: str = "auto",
        **legacy: Any,
    ) -> SweepResult:
        """Memoized :func:`~repro.simulation.sweep.run_sweep`.

        Resume comes for free: a sweep interrupted mid-grid, or extended
        with new parameter values or seeds, recomputes only the
        ``(value, seed)`` cells absent from the store.

        ``parameter_name=``/``parameter_values=``/``scenario_factory=``
        are deprecated aliases for ``parameter=``/``values=``/
        ``factory=`` and emit a :class:`DeprecationWarning`.
        """
        parameter = _pop_legacy_kwarg(
            legacy, "parameter_name", "parameter", parameter
        )
        values = _pop_legacy_kwarg(
            legacy, "parameter_values", "values", values
        )
        factory = _pop_legacy_kwarg(
            legacy, "scenario_factory", "factory", factory
        )
        _reject_unknown_kwargs("run_sweep", legacy)
        if parameter is None or factory is None:
            raise ConfigurationError(
                "run_sweep needs a parameter name and a scenario factory"
            )
        if not values:
            raise ConfigurationError(
                "sweep needs at least one parameter value"
            )
        if not seeds:
            raise ConfigurationError("sweep needs at least one seed")
        scenarios = [
            factory(value, int(seed))
            for value in values
            for seed in seeds
        ]
        metrics = self.fetch_metrics(scenarios,
                                     workers=effective_workers(workers),
                                     backend=backend)
        per_point = len(seeds)
        chunks = [
            metrics[i * per_point : (i + 1) * per_point]
            for i in range(len(values))
        ]
        return sweep_from_metrics(
            parameter, values, chunks, label_fn=label_fn
        )

    # -- maintenance ------------------------------------------------------

    def stats(self) -> CacheStats:
        index_stats = self.index.stats()
        blob_stats = self.blobs.stats()
        return CacheStats(
            fingerprints=index_stats.fingerprints,
            runs=index_stats.runs,
            hits_recorded=index_stats.hits,
            objects=blob_stats.objects,
            total_bytes=blob_stats.total_bytes,
            misses_recorded=index_stats.misses,
        )

    def gc(self) -> Dict[str, int]:
        """Drop unreferenced blobs and index rows whose blob vanished.

        Returns ``{"blobs_removed": ..., "runs_dropped": ...}``.
        """
        referenced = self.index.referenced_blobs()
        blobs_removed = self.blobs.gc(keep=referenced)
        dead = {key for key in referenced if not self.blobs.has(key)}
        runs_dropped = self.index.drop_blobs(dead) if dead else 0
        self.index.compact()
        return {"blobs_removed": blobs_removed, "runs_dropped": runs_dropped}

    def clear(self) -> None:
        """Delete every object and the manifest."""
        self.index.clear()
        shutil.rmtree(self.blobs.objects_dir, ignore_errors=True)
        self.blobs.objects_dir.mkdir(parents=True, exist_ok=True)
