"""Content-addressed on-disk blob store.

Payloads (JSON-serializable objects) are stored gzip-compressed under
``objects/ab/cdef…`` where ``abcdef…`` is the SHA-256 of the canonical
JSON encoding — identical payloads share one object regardless of who
writes them or how often.  Writes go through a temp file in the target
directory followed by :func:`os.replace`, so concurrent writers racing
on the same key are safe (last rename wins, all renames carry identical
bytes) and a crashed writer never leaves a half-written object behind.

Reads verify the content hash, so a corrupted or truncated object is
indistinguishable from an absent one — callers just recompute.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import ConfigurationError
from repro.obs import REGISTRY
from repro.store.fingerprint import canonical_json

__all__ = ["BlobStats", "BlobStore"]

_TMP_PREFIX = ".tmp-"

_READS = REGISTRY.counter(
    "store_blob_reads_total",
    help="Blob payloads read back from the object store",
)
_READ_BYTES = REGISTRY.counter(
    "store_blob_read_bytes_total",
    help="Compressed bytes read from the object store",
)
_WRITES = REGISTRY.counter(
    "store_blob_writes_total",
    help="Blob objects written to the object store",
)
_WRITE_BYTES = REGISTRY.counter(
    "store_blob_write_bytes_total",
    help="Compressed bytes written to the object store",
)
_VERIFY_FAILURES = REGISTRY.counter(
    "store_blob_verify_failures_total",
    help="Blob reads whose content failed hash verification",
)
_EVICTIONS = REGISTRY.counter(
    "store_blob_evictions_total",
    help="Blob objects deleted by garbage collection",
)


@dataclass(frozen=True)
class BlobStats:
    """Object count and on-disk footprint of one store."""

    objects: int
    total_bytes: int


class BlobStore:
    """Sharded, content-addressed object store rooted at ``root``."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)

    # -- addressing -------------------------------------------------------

    @staticmethod
    def key_for(payload: Any) -> str:
        """The content key ``put`` would assign to ``payload``."""
        data = canonical_json(payload).encode("ascii")
        return hashlib.sha256(data).hexdigest()

    def _path(self, key: str) -> Path:
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ConfigurationError(f"malformed blob key {key!r}")
        return self.objects_dir / key[:2] / key[2:]

    # -- primitives -------------------------------------------------------

    def put(self, payload: Any) -> str:
        """Store ``payload`` and return its content key (idempotent)."""
        data = canonical_json(payload).encode("ascii")
        key = hashlib.sha256(data).hexdigest()
        path = self._path(key)
        if path.exists():
            return key
        path.parent.mkdir(parents=True, exist_ok=True)
        # mtime=0 keeps the compressed bytes deterministic, so two
        # concurrent writers rename byte-identical files over each other.
        blob = gzip.compress(data, mtime=0)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=_TMP_PREFIX)
        try:
            os.write(fd, blob)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        _WRITES.inc()
        _WRITE_BYTES.inc(len(blob))
        return key

    def get(self, key: str, default: Any = None) -> Any:
        """Load a payload; ``default`` when absent, corrupt or truncated."""
        return self.load(key, default)[0]

    def load(self, key: str, default: Any = None) -> tuple:
        """``(payload, compressed_bytes)``; ``(default, 0)`` on any miss.

        The byte count is the on-disk (compressed) size actually read,
        which is what the cache reports as "bytes served".
        """
        path = self._path(key)
        try:
            raw = path.read_bytes()
            data = gzip.decompress(raw)
        except (OSError, EOFError, gzip.BadGzipFile, zlib.error):
            return default, 0
        _READS.inc()
        _READ_BYTES.inc(len(raw))
        if hashlib.sha256(data).hexdigest() != key:
            _VERIFY_FAILURES.inc()
            return default, 0
        try:
            return json.loads(data.decode("ascii")), len(raw)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return default, 0

    def has(self, key: str) -> bool:
        return self._path(key).exists()

    def delete(self, key: str) -> bool:
        try:
            self._path(key).unlink()
            return True
        except OSError:
            return False

    def keys(self) -> Iterator[str]:
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for obj in sorted(shard.iterdir()):
                if not obj.name.startswith(_TMP_PREFIX):
                    yield shard.name + obj.name

    # -- maintenance ------------------------------------------------------

    def gc(self, keep: Iterable[str]) -> int:
        """Delete every object not in ``keep``; return how many died.

        Leftover temp files from crashed writers are swept as well.
        """
        live = set(keep)
        removed = 0
        for shard in list(self.objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for obj in list(shard.iterdir()):
                if obj.name.startswith(_TMP_PREFIX):
                    obj.unlink(missing_ok=True)
                    continue
                if shard.name + obj.name not in live:
                    obj.unlink(missing_ok=True)
                    removed += 1
            if not any(shard.iterdir()):
                shard.rmdir()
        _EVICTIONS.inc(removed)
        return removed

    def stats(self) -> BlobStats:
        objects = 0
        total = 0
        for key in self.keys():
            objects += 1
            total += self._path(key).stat().st_size
        return BlobStats(objects=objects, total_bytes=total)
