"""Canonical fingerprints for scenarios and configuration mappings.

The run store keys cached results by *what was simulated*, not by how
the caller happened to spell it: two :class:`~repro.simulation.scenario.Scenario`
objects that describe the same timeline under the same knobs must hash
to the same fingerprint, and any change that can alter a run's output
(a plenary month, a session length, the team policy, the model version)
must change it.

The fingerprint deliberately **excludes the seed** — the store's unit of
work is ``(fingerprint, seed)``, so one fingerprint indexes the whole
replicate family of a scenario.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Dict, Mapping

from repro.simulation.scenario import Scenario

__all__ = [
    "canonical_json",
    "config_fingerprint",
    "scenario_payload",
    "scenario_fingerprint",
    "scenario_summary",
]


def _model_version() -> str:
    # Imported lazily so repro.store never participates in an import
    # cycle with the repro package root.
    from repro import __version__

    return __version__


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` to a canonical, byte-stable JSON string.

    Keys are sorted and separators fixed, so mappings that differ only
    in insertion order serialize identically; floats use Python's
    shortest round-trip repr, so they parse back bit-identical.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON of an arbitrary config mapping."""
    return hashlib.sha256(canonical_json(config).encode("ascii")).hexdigest()


def scenario_payload(scenario: Scenario) -> Dict[str, Any]:
    """The scenario's semantic content: every knob except the seed.

    The model version rides along so results cached under one release
    are never served after the simulator's behaviour changes.
    """
    payload = asdict(scenario)
    payload.pop("seed", None)
    payload["model_version"] = _model_version()
    return payload


def scenario_fingerprint(scenario: Scenario) -> str:
    """Stable content hash identifying a scenario across processes."""
    return config_fingerprint(scenario_payload(scenario))


def scenario_summary(scenario: Scenario) -> Dict[str, Any]:
    """Human-readable manifest entry for a fingerprint."""
    return {
        "name": scenario.name,
        "plenaries": len(scenario.plenaries),
        "hackathons": scenario.hackathon_count(),
        "team_policy": scenario.team_policy,
        "end_month": scenario.end_month,
        "plugin": scenario.plugin,
        "spec_version": scenario.spec_version,
        "model_version": _model_version(),
    }
