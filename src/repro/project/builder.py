"""Work-plan builder for a consortium + framework.

Generates an ECSEL-style work plan: one management WP led by the
coordinator plus technical WPs whose partner sets mix tool providers
with case-study owners and whose domains come from the framework's
method/application split — so deliverable production genuinely depends
on provider↔owner collaboration, the thing the hackathon creates.
"""

from __future__ import annotations


from repro.consortium.consortium import Consortium
from repro.consortium.organization import ProjectRole
from repro.errors import ConfigurationError
from repro.framework.catalog import FrameworkModel
from repro.project.workpackages import Deliverable, WorkPackage, WorkPlan
from repro.rng import RngHub

__all__ = ["build_workplan"]

#: Technical scopes of an ECSEL-style work plan; cycled over the WPs.
_WP_SCOPES = (
    ("system engineering methods", ("model_based_design",
                                    "requirements_engineering")),
    ("runtime analysis", ("runtime_verification", "performance_analysis")),
    ("traceability platform", ("traceability", "static_analysis")),
    ("case-study integration", ("testing", "embedded_systems")),
)


def build_workplan(
    consortium: Consortium,
    framework: FrameworkModel,
    hub: RngHub,
    n_technical_wps: int = 4,
    deliverables_per_wp: int = 3,
    horizon_months: float = 18.0,
) -> WorkPlan:
    """Construct the project work plan.

    Every technical WP gets a provider leader, 2-3 more providers and
    2 case-study owners as partners; deliverable due dates are spread
    over the horizon.  The management WP spans the whole consortium
    with a single lightweight deliverable per reporting period.
    """
    if n_technical_wps < 1:
        raise ConfigurationError(
            f"n_technical_wps must be >= 1, got {n_technical_wps}"
        )
    if deliverables_per_wp < 1:
        raise ConfigurationError(
            f"deliverables_per_wp must be >= 1, got {deliverables_per_wp}"
        )
    if horizon_months <= 0:
        raise ConfigurationError(
            f"horizon_months must be > 0, got {horizon_months}"
        )
    rng = hub.stream("workplan")
    providers = consortium.tool_providers
    owners = consortium.case_study_owners
    if not providers or not owners:
        raise ConfigurationError(
            "work plan needs both tool providers and case-study owners"
        )
    coordinators = consortium.organizations_with_role(ProjectRole.COORDINATOR)
    coordinator = coordinators[0] if coordinators else providers[0]

    plan = WorkPlan()

    # WP0: management — the coordinator plus every organisation.
    wp0 = WorkPackage(
        wp_id="wp0",
        name="project management",
        leader_org_id=coordinator.org_id,
        partner_org_ids=frozenset(o.org_id for o in consortium.organizations),
        domains=frozenset({"requirements_engineering"}),
    )
    for i in range(deliverables_per_wp):
        wp0.deliverables.append(
            Deliverable(
                deliv_id=f"wp0.d{i}",
                wp_id="wp0",
                due_month=horizon_months * (i + 1.3) / (deliverables_per_wp + 0.3),
                effort=0.4,
            )
        )
    plan.add(wp0)

    # Technical WPs.
    for w in range(n_technical_wps):
        scope_name, scope_domains = _WP_SCOPES[w % len(_WP_SCOPES)]
        leader = providers[w % len(providers)]
        partner_ids = {leader.org_id}
        # 2-3 more providers.
        extra = 2 + int(rng.integers(0, 2))
        for k in range(extra):
            partner_ids.add(
                providers[(w + 1 + k) % len(providers)].org_id
            )
        # 2 case-study owners keep the WP honest about industrial needs.
        for k in range(2):
            partner_ids.add(owners[(w + k) % len(owners)].org_id)
        wp = WorkPackage(
            wp_id=f"wp{w + 1}",
            name=scope_name,
            leader_org_id=leader.org_id,
            partner_org_ids=frozenset(partner_ids),
            domains=frozenset(scope_domains),
        )
        for i in range(deliverables_per_wp):
            due = horizon_months * (i + 1.3) / (deliverables_per_wp + 0.3)
            wp.deliverables.append(
                Deliverable(
                    deliv_id=f"wp{w + 1}.d{i}",
                    wp_id=wp.wp_id,
                    due_month=float(due),
                    effort=float(0.5 + 0.2 * rng.random()),
                )
            )
        plan.add(wp)
    return plan
