"""Project-plan substrate: work packages and deliverables.

Public API:

* :class:`WorkPackage`, :class:`Deliverable`, :class:`WorkPlan`
* :func:`build_workplan`
"""

from repro.project.builder import build_workplan
from repro.project.workpackages import Deliverable, WorkPackage, WorkPlan

__all__ = ["Deliverable", "WorkPackage", "WorkPlan", "build_workplan"]
