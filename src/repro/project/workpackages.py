"""Work packages and deliverables.

The paper's plenaries are organised around Work Packages ("a plenary is
divided in slots for presentation by various partners (e.g. Work
Package leaders)"), and its core complaint is that the people who
actually *produce the deliverables* — the technical staff — were absent
and disconnected.  This module closes the causal loop: deliverable
production advances monthly at a rate driven by (a) the WP partners'
joint knowledge over the WP's domains and (b) how well those partners
are actually connected in the collaboration network.  A hackathon that
builds ties and spreads knowledge therefore shows up as deliverables
landing on time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cognition.knowledge import KnowledgeVector
from repro.consortium.consortium import Consortium
from repro.errors import ConfigurationError
from repro.network.graph import CollaborationNetwork

__all__ = ["Deliverable", "WorkPackage", "WorkPlan"]


@dataclass
class Deliverable:
    """One contractual deliverable of a work package.

    ``effort`` is the abstract amount of progress required (1.0 =
    a nominal deliverable); ``progress`` accumulates monthly.
    """

    deliv_id: str
    wp_id: str
    due_month: float
    effort: float = 1.0
    progress: float = 0.0
    completed_month: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.deliv_id:
            raise ConfigurationError("deliverable id must be non-empty")
        if self.due_month < 0:
            raise ConfigurationError(
                f"{self.deliv_id}: due month must be >= 0, got {self.due_month}"
            )
        if self.effort <= 0:
            raise ConfigurationError(
                f"{self.deliv_id}: effort must be > 0, got {self.effort}"
            )

    @property
    def is_complete(self) -> bool:
        return self.completed_month is not None

    def is_on_time(self) -> bool:
        """Completed at or before its due month."""
        return self.is_complete and self.completed_month <= self.due_month

    def delay(self, as_of_month: float) -> float:
        """Months past due (0 if on time / not yet due)."""
        end = self.completed_month if self.is_complete else as_of_month
        return max(0.0, end - self.due_month)

    def add_progress(self, amount: float, month: float) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"progress amount must be >= 0, got {amount}"
            )
        if self.is_complete:
            return
        self.progress = min(self.effort, self.progress + amount)
        if self.progress >= self.effort:
            self.completed_month = month


@dataclass
class WorkPackage:
    """A work package with its partner set and technical scope."""

    wp_id: str
    name: str
    leader_org_id: str
    partner_org_ids: FrozenSet[str]
    domains: FrozenSet[str]
    deliverables: List[Deliverable] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.wp_id:
            raise ConfigurationError("work package id must be non-empty")
        if self.leader_org_id not in self.partner_org_ids:
            raise ConfigurationError(
                f"{self.wp_id}: leader {self.leader_org_id!r} must be a partner"
            )
        if not self.domains:
            raise ConfigurationError(
                f"{self.wp_id}: work package needs at least one domain"
            )

    def open_deliverables(self) -> List[Deliverable]:
        """Incomplete deliverables, earliest due date first."""
        pending = [d for d in self.deliverables if not d.is_complete]
        pending.sort(key=lambda d: (d.due_month, d.deliv_id))
        return pending

    # -- production model ---------------------------------------------------

    def knowledge_coverage(self, consortium: Consortium) -> float:
        """Joint proficiency of the WP's technical staff over its domains.

        Memoized on the consortium's ``knowledge_version``: the monthly
        advancement loop queries coverage every simulated month, but
        knowledge only changes at plenaries, so most queries hit the
        cache.
        """
        version = consortium.knowledge_version
        cached = getattr(self, "_coverage_cache", None)
        if cached is not None and cached[0] is consortium and cached[1] == version:
            return cached[2]
        members = [
            m
            for org_id in self.partner_org_ids
            for m in consortium.technical_members(org_id)
        ]
        if not members:
            coverage = 0.0
        else:
            pooled = KnowledgeVector.pooled(m.knowledge for m in members)
            coverage = pooled.coverage_of(self.domains)
        self._coverage_cache = (consortium, version, coverage)
        return coverage

    def collaboration_factor(
        self,
        consortium: Consortium,
        network: CollaborationNetwork,
        org_pairs: Optional[frozenset] = None,
    ) -> float:
        """Fraction of WP partner-organisation pairs with a live tie.

        A WP whose partners never talk produces at the floor rate; a WP
        whose organisations are all connected produces at full speed —
        the "cooperation between partners" the paper found lacking.
        ``org_pairs`` may carry a precomputed
        :meth:`~repro.network.graph.CollaborationNetwork.org_tie_pairs`
        to avoid rescanning the network per work package.
        """
        orgs = sorted(self.partner_org_ids)
        if len(orgs) < 2:
            return 1.0
        if org_pairs is None:
            org_pairs = network.org_tie_pairs()
        connected, total = 0, 0
        for i in range(len(orgs)):
            for j in range(i + 1, len(orgs)):
                total += 1
                if (orgs[i], orgs[j]) in org_pairs:
                    connected += 1
        return connected / total

    def monthly_progress_rate(
        self,
        consortium: Consortium,
        network: CollaborationNetwork,
        base_rate: float,
        org_pairs: Optional[frozenset] = None,
    ) -> float:
        """Progress produced per month under current project state."""
        coverage = self.knowledge_coverage(consortium)
        collaboration = self.collaboration_factor(
            consortium, network, org_pairs
        )
        return base_rate * (0.3 + 0.7 * coverage) * (0.4 + 0.6 * collaboration)


class WorkPlan:
    """All work packages of the project, with monthly advancement."""

    def __init__(self, base_rate: float = 0.22) -> None:
        if base_rate <= 0:
            raise ConfigurationError(f"base_rate must be > 0, got {base_rate}")
        self.base_rate = base_rate
        self._wps: Dict[str, WorkPackage] = {}

    def add(self, wp: WorkPackage) -> None:
        if wp.wp_id in self._wps:
            raise ConfigurationError(f"duplicate work package {wp.wp_id!r}")
        self._wps[wp.wp_id] = wp

    @property
    def work_packages(self) -> List[WorkPackage]:
        return [self._wps[k] for k in sorted(self._wps)]

    def work_package(self, wp_id: str) -> WorkPackage:
        try:
            return self._wps[wp_id]
        except KeyError:
            raise ConfigurationError(f"unknown work package {wp_id!r}") from None

    def deliverables(self) -> List[Deliverable]:
        return [d for wp in self.work_packages for d in wp.deliverables]

    # -- dynamics -----------------------------------------------------------

    def advance_month(
        self,
        month: float,
        consortium: Consortium,
        network: CollaborationNetwork,
    ) -> List[str]:
        """One month of production; returns ids of deliverables completed.

        Each WP's monthly output goes to its earliest-due open
        deliverable; surplus spills into the next one (teams do not
        idle once a deliverable ships).
        """
        completed: List[str] = []
        org_pairs = network.org_tie_pairs()
        for wp in self.work_packages:
            budget = wp.monthly_progress_rate(
                consortium, network, self.base_rate, org_pairs
            )
            for deliverable in wp.open_deliverables():
                if budget <= 0:
                    break
                needed = deliverable.effort - deliverable.progress
                spend = min(budget, needed)
                deliverable.add_progress(spend, month)
                budget -= spend
                if deliverable.is_complete:
                    completed.append(deliverable.deliv_id)
        return completed

    # -- reporting ------------------------------------------------------------

    def completion_fraction(self) -> float:
        deliverables = self.deliverables()
        if not deliverables:
            return 0.0
        return sum(1 for d in deliverables if d.is_complete) / len(deliverables)

    def on_time_rate(self) -> float:
        """Fraction of *completed* deliverables that met their due month."""
        done = [d for d in self.deliverables() if d.is_complete]
        if not done:
            return 0.0
        return sum(1 for d in done if d.is_on_time()) / len(done)

    def mean_delay(self, as_of_month: float) -> float:
        """Mean months of delay across all deliverables due by now."""
        due = [
            d for d in self.deliverables() if d.due_month <= as_of_month
        ]
        if not due:
            return 0.0
        return sum(d.delay(as_of_month) for d in due) / len(due)

    def status_rows(
        self, as_of_month: float
    ) -> List[Tuple[str, str, float, float, str]]:
        """(deliverable, wp, due, progress, status) rows for reporting."""
        rows = []
        for d in self.deliverables():
            if d.is_complete:
                status = "on time" if d.is_on_time() else (
                    f"late +{d.delay(as_of_month):.0f} mo"
                )
            elif d.due_month < as_of_month:
                status = f"OVERDUE +{d.delay(as_of_month):.0f} mo"
            else:
                status = "in progress"
            rows.append((d.deliv_id, d.wp_id, d.due_month,
                         d.progress / d.effort, status))
        return rows
