"""Cognitive-distance substrate (Nooteboom inverted-U learning).

Public API re-exported here:

* :class:`KnowledgeVector` — member expertise profiles.
* :func:`cognitive_distance`, :func:`team_diversity` — distance metrics.
* :class:`LearningModel` — inverted-U learning and knowledge transfer.
"""

from repro.cognition.distance import (
    cognitive_distance,
    distance_report,
    mean_distance_to_group,
    novelty,
    pairwise_distance_matrix,
    team_diversity,
    understanding,
)
from repro.cognition.knowledge import DEFAULT_DOMAINS, KnowledgeVector
from repro.cognition.learning import LearningModel, optimal_distance

__all__ = [
    "DEFAULT_DOMAINS",
    "KnowledgeVector",
    "LearningModel",
    "cognitive_distance",
    "distance_report",
    "mean_distance_to_group",
    "novelty",
    "optimal_distance",
    "pairwise_distance_matrix",
    "team_diversity",
    "understanding",
]
