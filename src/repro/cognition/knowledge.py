"""Knowledge profiles of project members.

A :class:`KnowledgeVector` maps *knowledge domains* (model-based design,
runtime verification, avionics, telecoms...) to proficiency levels in
[0, 1].  The cognitive-distance machinery of Nooteboom — which the paper
cites as the theoretical ground for why large consortia struggle — is
built on top of these profiles in :mod:`repro.cognition.distance`.

Internally a vector is a dense ``float64`` array over a process-wide
:class:`DomainRegistry` (an append-only intern table mapping domain
names to array indices).  The mapping API is unchanged, but the hot
operations — cosine similarity, norm, absorb, pooling — are O(1)
vectorized NumPy calls with no per-call dict allocation, and the
scalar reductions (:meth:`norm`, :meth:`total`) are cached, which is
sound because vectors are immutable: every mutating operation returns
a new vector.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "KnowledgeVector",
    "DomainRegistry",
    "DEFAULT_DOMAINS",
    "registered_domains",
]

#: Knowledge domains used by the MegaM@Rt2 preset.  They mirror the
#: project's technical scope (Sec. II): scalable model-based methods,
#: runtime V&V, traceability, plus the industrial application domains.
DEFAULT_DOMAINS: Tuple[str, ...] = (
    "model_based_design",
    "runtime_verification",
    "static_analysis",
    "traceability",
    "requirements_engineering",
    "performance_analysis",
    "embedded_systems",
    "telecom",
    "transportation",
    "logistics",
    "avionics",
    "testing",
)


class DomainRegistry:
    """Append-only intern table: domain name -> dense array index.

    All :class:`KnowledgeVector` instances in a process share one
    registry, so any two vectors agree on what each array slot means
    and binary operations never need name-based alignment — only
    zero-padding when the registry grew between their creations.
    """

    __slots__ = ("_index", "_names")

    def __init__(self, domains: Iterable[str] = ()) -> None:
        self._index: Dict[str, int] = {}
        self._names: List[str] = []
        for domain in domains:
            self.register(domain)

    def register(self, domain: str) -> int:
        """Intern ``domain`` and return its index, appending if new."""
        idx = self._index.get(domain)
        if idx is None:
            if not isinstance(domain, str) or not domain:
                raise ValueError(
                    f"domain must be a non-empty string, got {domain!r}"
                )
            idx = len(self._names)
            self._index[domain] = idx
            self._names.append(domain)
        return idx

    def index(self, domain: str) -> Optional[int]:
        """Index of ``domain`` without registering it; None if unknown."""
        return self._index.get(domain)

    def name(self, idx: int) -> str:
        return self._names[idx]

    def __len__(self) -> int:
        return len(self._names)


#: The process-wide registry.  Seeding it with the default domains means
#: almost every vector is born at full width, so binary ops rarely pad.
_REGISTRY = DomainRegistry(DEFAULT_DOMAINS)


def registered_domains() -> Tuple[str, ...]:
    """Snapshot of the process-wide domain intern order.

    Every vector is dense over this registry, so scalar reductions like
    :meth:`KnowledgeVector.total` depend on its current width (NumPy's
    pairwise summation groups differently as the array grows).  Code
    that caches derived floats across registry growth — notably the
    batch engine's world templates — includes this snapshot in its
    cache key.
    """
    return tuple(_REGISTRY._names)


def _validate_level(domain: str, level: float) -> None:
    if not isinstance(domain, str) or not domain:
        raise ValueError(f"domain must be a non-empty string, got {domain!r}")
    if not 0.0 <= level <= 1.0:
        raise ValueError(
            f"proficiency for {domain!r} must be in [0,1], got {level}"
        )


def _aligned(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Zero-pad the shorter of two registry-indexed arrays."""
    na, nb = a.shape[0], b.shape[0]
    if na == nb:
        return a, b
    if na < nb:
        a = np.concatenate([a, np.zeros(nb - na)])
    else:
        b = np.concatenate([b, np.zeros(na - nb)])
    return a, b


class KnowledgeVector:
    """A mapping from knowledge domain to proficiency in [0, 1].

    The class behaves like a read-mostly mapping with vector-space
    helpers (cosine similarity, blending, transfer).  Missing domains
    read as 0.0 proficiency.  Instances are immutable: all "mutating"
    helpers return new vectors, which is what makes the cached
    :meth:`norm`/:meth:`total` reductions safe.

    Examples
    --------
    >>> kv = KnowledgeVector({"testing": 0.8, "telecom": 0.3})
    >>> kv["testing"]
    0.8
    >>> kv["avionics"]
    0.0
    """

    __slots__ = ("_vec", "_norm", "_total", "_count")

    def __init__(self, levels: Mapping[str, float] = ()) -> None:
        pairs: List[Tuple[int, float]] = []
        for domain, level in dict(levels).items():
            _validate_level(domain, level)
            pairs.append((_REGISTRY.register(domain), float(level)))
        vec = np.zeros(len(_REGISTRY))
        for idx, level in pairs:
            vec[idx] = level
        self._vec = vec
        self._norm: Optional[float] = None
        self._total: Optional[float] = None
        self._count: Optional[int] = None

    @classmethod
    def _from_array(cls, vec: np.ndarray) -> "KnowledgeVector":
        """Trusted constructor: take ownership of a registry-indexed array."""
        self = object.__new__(cls)
        self._vec = vec
        self._norm = None
        self._total = None
        self._count = None
        return self

    def __getitem__(self, domain: str) -> float:
        idx = _REGISTRY.index(domain)
        if idx is None or idx >= self._vec.shape[0]:
            return 0.0
        return float(self._vec[idx])

    def __contains__(self, domain: str) -> bool:
        return self[domain] > 0.0

    def __iter__(self) -> Iterator[str]:
        return iter(self.domains())

    def __len__(self) -> int:
        if self._count is None:
            self._count = int(np.count_nonzero(self._vec))
        return self._count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnowledgeVector):
            return NotImplemented
        a, b = _aligned(self._vec, other._vec)
        return bool(np.array_equal(a, b))

    def __repr__(self) -> str:
        inner = ", ".join(f"{d}={v:.2f}" for d, v in self.items())
        return f"KnowledgeVector({inner})"

    def __reduce__(self):
        # Serialize by name, not by index: another process's registry
        # may have interned domains in a different order.
        return (KnowledgeVector, (self.as_dict(),))

    def domains(self) -> List[str]:
        """Domains with non-zero proficiency, sorted."""
        return sorted(_REGISTRY.name(i) for i in np.nonzero(self._vec)[0])

    def items(self) -> List[Tuple[str, float]]:
        return sorted(
            (_REGISTRY.name(i), float(self._vec[i]))
            for i in np.nonzero(self._vec)[0]
        )

    def as_dict(self) -> Dict[str, float]:
        """A plain-dict copy of the non-zero levels."""
        return dict(self.items())

    def as_array(self) -> np.ndarray:
        """Read-only view of the dense registry-indexed representation."""
        view = self._vec.view()
        view.flags.writeable = False
        return view

    def norm(self) -> float:
        """Euclidean norm of the proficiency vector (cached)."""
        if self._norm is None:
            v = self._vec
            self._norm = math.sqrt(float(np.dot(v, v)))
        return self._norm

    def total(self) -> float:
        """Sum of proficiencies — a scalar "amount of knowledge" (cached)."""
        if self._total is None:
            self._total = float(self._vec.sum())
        return self._total

    def cosine_similarity(self, other: "KnowledgeVector") -> float:
        """Cosine similarity in [0, 1]; 0.0 if either vector is empty."""
        na, nb = self.norm(), other.norm()
        if na == 0.0 or nb == 0.0:
            return 0.0
        a, b = _aligned(self._vec, other._vec)
        dot = float(np.dot(a, b))
        return min(1.0, max(0.0, dot / (na * nb)))

    def overlap(self, other: "KnowledgeVector") -> float:
        """Jaccard overlap of the supported domains, in [0, 1]."""
        a, b = _aligned(self._vec, other._vec)
        mine, theirs = a > 0.0, b > 0.0
        union = int(np.count_nonzero(mine | theirs))
        if union == 0:
            return 0.0
        return int(np.count_nonzero(mine & theirs)) / union

    def coverage_of(self, required: Iterable[str]) -> float:
        """Mean proficiency over ``required`` domains (0.0 if empty).

        Used to score how well a member (or a pooled team vector)
        covers a challenge's required domains.
        """
        req = list(required)
        if not req:
            return 0.0
        return sum(self[d] for d in req) / len(req)

    def updated(self, domain: str, level: float) -> "KnowledgeVector":
        """Return a copy with ``domain`` set to ``level``."""
        _validate_level(domain, float(level))
        idx = _REGISTRY.register(domain)
        vec = self._vec
        if idx >= vec.shape[0]:
            vec = np.concatenate([vec, np.zeros(idx + 1 - vec.shape[0])])
        else:
            vec = vec.copy()
        vec[idx] = float(level)
        return KnowledgeVector._from_array(vec)

    def absorb(self, other: "KnowledgeVector", rate: float) -> "KnowledgeVector":
        """Learn from ``other``: move each domain toward the max of the two.

        ``rate`` in [0, 1] is the fraction of the gap closed; it is the
        output of the learning model (inverted-U in cognitive distance).
        Returns a new vector; proficiency never decreases.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"absorb rate must be in [0,1], got {rate}")
        a, b = _aligned(self._vec, other._vec)
        gap = b - a
        np.maximum(gap, 0.0, out=gap)
        gap *= rate
        gap += a
        return KnowledgeVector._from_array(gap)

    @staticmethod
    def stack(vectors: Iterable["KnowledgeVector"]) -> np.ndarray:
        """Dense ``(n, width)`` matrix of ``vectors``, zero-padded to a
        common registry width.

        The rows are fresh copies in registry index order — callers may
        mutate them freely (the batched exchange loop in
        :mod:`repro.meetings.plenary` does exactly that).
        """
        arrays = [v._vec for v in vectors]
        if not arrays:
            return np.zeros((0, len(_REGISTRY)))
        width = max(a.shape[0] for a in arrays)
        out = np.zeros((len(arrays), width))
        for i, a in enumerate(arrays):
            out[i, : a.shape[0]] = a
        return out

    @staticmethod
    def pooled(vectors: Iterable["KnowledgeVector"]) -> "KnowledgeVector":
        """Domain-wise maximum over ``vectors`` — a team's joint profile."""
        arrays = [v._vec for v in vectors]
        if not arrays:
            return KnowledgeVector()
        width = max(a.shape[0] for a in arrays)
        out = np.zeros(width)
        for a in arrays:
            np.maximum(out[: a.shape[0]], a, out=out[: a.shape[0]])
        return KnowledgeVector._from_array(out)
