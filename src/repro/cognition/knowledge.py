"""Knowledge profiles of project members.

A :class:`KnowledgeVector` maps *knowledge domains* (model-based design,
runtime verification, avionics, telecoms...) to proficiency levels in
[0, 1].  The cognitive-distance machinery of Nooteboom — which the paper
cites as the theoretical ground for why large consortia struggle — is
built on top of these profiles in :mod:`repro.cognition.distance`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

__all__ = ["KnowledgeVector", "DEFAULT_DOMAINS"]

#: Knowledge domains used by the MegaM@Rt2 preset.  They mirror the
#: project's technical scope (Sec. II): scalable model-based methods,
#: runtime V&V, traceability, plus the industrial application domains.
DEFAULT_DOMAINS: Tuple[str, ...] = (
    "model_based_design",
    "runtime_verification",
    "static_analysis",
    "traceability",
    "requirements_engineering",
    "performance_analysis",
    "embedded_systems",
    "telecom",
    "transportation",
    "logistics",
    "avionics",
    "testing",
)


class KnowledgeVector:
    """A sparse mapping from knowledge domain to proficiency in [0, 1].

    The class behaves like a read-mostly mapping with vector-space
    helpers (cosine similarity, blending, transfer).  Missing domains
    read as 0.0 proficiency.

    Examples
    --------
    >>> kv = KnowledgeVector({"testing": 0.8, "telecom": 0.3})
    >>> kv["testing"]
    0.8
    >>> kv["avionics"]
    0.0
    """

    __slots__ = ("_levels",)

    def __init__(self, levels: Mapping[str, float] = ()) -> None:
        self._levels: Dict[str, float] = {}
        for domain, level in dict(levels).items():
            self._set(domain, level)

    def _set(self, domain: str, level: float) -> None:
        if not isinstance(domain, str) or not domain:
            raise ValueError(f"domain must be a non-empty string, got {domain!r}")
        if not 0.0 <= level <= 1.0:
            raise ValueError(
                f"proficiency for {domain!r} must be in [0,1], got {level}"
            )
        if level > 0.0:
            self._levels[domain] = float(level)
        else:
            self._levels.pop(domain, None)

    def __getitem__(self, domain: str) -> float:
        return self._levels.get(domain, 0.0)

    def __contains__(self, domain: str) -> bool:
        return domain in self._levels

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._levels))

    def __len__(self) -> int:
        return len(self._levels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnowledgeVector):
            return NotImplemented
        return self._levels == other._levels

    def __repr__(self) -> str:
        inner = ", ".join(f"{d}={v:.2f}" for d, v in sorted(self._levels.items()))
        return f"KnowledgeVector({inner})"

    def domains(self) -> List[str]:
        """Domains with non-zero proficiency, sorted."""
        return sorted(self._levels)

    def items(self) -> List[Tuple[str, float]]:
        return sorted(self._levels.items())

    def as_dict(self) -> Dict[str, float]:
        """A plain-dict copy of the non-zero levels."""
        return dict(self._levels)

    def norm(self) -> float:
        """Euclidean norm of the proficiency vector."""
        return math.sqrt(sum(v * v for v in self._levels.values()))

    def total(self) -> float:
        """Sum of proficiencies — a scalar "amount of knowledge"."""
        return sum(self._levels.values())

    def cosine_similarity(self, other: "KnowledgeVector") -> float:
        """Cosine similarity in [0, 1]; 0.0 if either vector is empty."""
        na, nb = self.norm(), other.norm()
        if na == 0.0 or nb == 0.0:
            return 0.0
        dot = sum(v * other[d] for d, v in self._levels.items())
        return min(1.0, max(0.0, dot / (na * nb)))

    def overlap(self, other: "KnowledgeVector") -> float:
        """Jaccard overlap of the supported domains, in [0, 1]."""
        mine, theirs = set(self._levels), set(other._levels)
        if not mine and not theirs:
            return 0.0
        return len(mine & theirs) / len(mine | theirs)

    def coverage_of(self, required: Iterable[str]) -> float:
        """Mean proficiency over ``required`` domains (0.0 if empty).

        Used to score how well a member (or a pooled team vector)
        covers a challenge's required domains.
        """
        req = list(required)
        if not req:
            return 0.0
        return sum(self[d] for d in req) / len(req)

    def updated(self, domain: str, level: float) -> "KnowledgeVector":
        """Return a copy with ``domain`` set to ``level``."""
        levels = dict(self._levels)
        new = KnowledgeVector(levels)
        new._set(domain, level)
        return new

    def absorb(self, other: "KnowledgeVector", rate: float) -> "KnowledgeVector":
        """Learn from ``other``: move each domain toward the max of the two.

        ``rate`` in [0, 1] is the fraction of the gap closed; it is the
        output of the learning model (inverted-U in cognitive distance).
        Returns a new vector; proficiency never decreases.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"absorb rate must be in [0,1], got {rate}")
        levels = dict(self._levels)
        for domain, theirs in other._levels.items():
            mine = levels.get(domain, 0.0)
            if theirs > mine:
                levels[domain] = mine + rate * (theirs - mine)
        return KnowledgeVector(levels)

    @staticmethod
    def pooled(vectors: Iterable["KnowledgeVector"]) -> "KnowledgeVector":
        """Domain-wise maximum over ``vectors`` — a team's joint profile."""
        levels: Dict[str, float] = {}
        for vec in vectors:
            for domain, level in vec._levels.items():
                if level > levels.get(domain, 0.0):
                    levels[domain] = level
        return KnowledgeVector(levels)
