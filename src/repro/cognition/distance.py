"""Cognitive distance between project participants.

The paper (Sec. III, citing Nooteboom's *Inter-firm Alliances*) argues
that in large consortia "cognitive distance poses both a problem and an
opportunity": a large distance offers novelty but hampers mutual
understanding.  This module quantifies that distance from the
:class:`~repro.cognition.knowledge.KnowledgeVector` profiles.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.cognition.knowledge import KnowledgeVector

__all__ = [
    "cognitive_distance",
    "pairwise_distance_matrix",
    "team_diversity",
    "novelty",
    "understanding",
]


def cognitive_distance(a: KnowledgeVector, b: KnowledgeVector) -> float:
    """Distance in [0, 1] between two knowledge profiles.

    Defined as ``1 - cosine_similarity``.  Two members with identical
    profiles have distance 0; members with disjoint expertise have
    distance 1.  Empty profiles are maximally distant from everything
    (they share no frame of reference).
    """
    if len(a) == 0 or len(b) == 0:
        return 1.0
    return 1.0 - a.cosine_similarity(b)


def novelty(distance: float) -> float:
    """Potential for learning something new — increases with distance."""
    _check_unit(distance, "distance")
    return distance


def understanding(distance: float) -> float:
    """Ability to communicate — decreases with distance."""
    _check_unit(distance, "distance")
    return 1.0 - distance


def pairwise_distance_matrix(
    vectors: Sequence[KnowledgeVector],
) -> np.ndarray:
    """Symmetric matrix of cognitive distances with zero diagonal.

    Computed as one Gram-matrix product over the stacked dense
    profiles rather than O(n^2) per-pair similarity calls.
    """
    n = len(vectors)
    matrix = np.zeros((n, n), dtype=float)
    if n < 2:
        return matrix
    stacked = KnowledgeVector.stack(vectors)
    norms = np.sqrt(np.einsum("ij,ij->i", stacked, stacked))
    denom = np.outer(norms, norms)
    gram = stacked @ stacked.T
    with np.errstate(divide="ignore", invalid="ignore"):
        similarity = np.where(denom > 0.0, gram / denom, 0.0)
    np.clip(similarity, 0.0, 1.0, out=similarity)
    matrix = 1.0 - similarity
    # Empty profiles are maximally distant from everything (no shared
    # frame of reference), matching cognitive_distance's convention.
    matrix[denom == 0.0] = 1.0
    np.fill_diagonal(matrix, 0.0)
    return matrix


def team_diversity(vectors: Sequence[KnowledgeVector]) -> float:
    """Mean pairwise cognitive distance within a team, in [0, 1].

    A team of one (or zero) has zero diversity.  This is the quantity
    the inverted-U learning model evaluates for whole teams.
    """
    n = len(vectors)
    if n < 2:
        return 0.0
    matrix = pairwise_distance_matrix(vectors)
    # Mean over the strict upper triangle.
    return float(matrix[np.triu_indices(n, k=1)].mean())


def distance_report(
    labelled: Iterable[Tuple[str, KnowledgeVector]],
) -> List[Tuple[str, str, float]]:
    """All pairwise distances as ``(label_a, label_b, distance)`` rows.

    Convenience for examples and benches; rows are sorted by distance
    descending so the most distant pair comes first.
    """
    pairs = list(labelled)
    rows: List[Tuple[str, str, float]] = []
    for i in range(len(pairs)):
        for j in range(i + 1, len(pairs)):
            (la, va), (lb, vb) = pairs[i], pairs[j]
            rows.append((la, lb, cognitive_distance(va, vb)))
    rows.sort(key=lambda row: (-row[2], row[0], row[1]))
    return rows


def mean_distance_to_group(
    vector: KnowledgeVector, group: Sequence[KnowledgeVector]
) -> float:
    """Mean cognitive distance from ``vector`` to each member of ``group``."""
    if not group:
        return 0.0
    return sum(cognitive_distance(vector, g) for g in group) / len(group)


def _check_unit(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0,1], got {value}")
