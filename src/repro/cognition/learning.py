"""The inverted-U learning model.

Nooteboom's theory — which the paper leans on to explain why very large
consortia under-perform — says the *value* of an interaction between two
parties is the product of

* **novelty**, which grows with cognitive distance (there is something
  new to learn), and
* **understanding**, which shrinks with cognitive distance (they can
  still communicate).

The product ``d * (1 - d)`` peaks at intermediate distance: the
inverted U.  :class:`LearningModel` generalises this with a tunable
exponent and converts interaction events into knowledge-transfer rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cognition.distance import cognitive_distance
from repro.cognition.knowledge import KnowledgeVector
from repro.errors import ConfigurationError

__all__ = ["LearningModel", "optimal_distance"]


@dataclass(frozen=True)
class LearningModel:
    """Maps cognitive distance to learning value and transfer rates.

    Parameters
    ----------
    novelty_exponent:
        Exponent ``a`` on the novelty term: value = d**a * (1-d)**b.
    understanding_exponent:
        Exponent ``b`` on the understanding term.
    max_transfer_rate:
        Transfer rate (fraction of proficiency gap absorbed per hour of
        joint work) achieved at the peak of the inverted U.
    cultural_attenuation:
        How strongly cultural distance suppresses transfer, in [0, 1].
        0 means culture is ignored; 1 means a maximal cultural distance
        reduces transfer to zero.  The paper lists cultural heritage as
        one of the distances hackathons must bridge.
    """

    novelty_exponent: float = 1.0
    understanding_exponent: float = 1.0
    max_transfer_rate: float = 0.12
    cultural_attenuation: float = 0.5

    def __post_init__(self) -> None:
        if self.novelty_exponent <= 0 or self.understanding_exponent <= 0:
            raise ConfigurationError(
                "learning exponents must be positive, got "
                f"a={self.novelty_exponent}, b={self.understanding_exponent}"
            )
        if not 0.0 < self.max_transfer_rate <= 1.0:
            raise ConfigurationError(
                f"max_transfer_rate must be in (0,1], got {self.max_transfer_rate}"
            )
        if not 0.0 <= self.cultural_attenuation <= 1.0:
            raise ConfigurationError(
                "cultural_attenuation must be in [0,1], "
                f"got {self.cultural_attenuation}"
            )
        # The inverted-U normalisation peak depends only on the (frozen)
        # exponents; precompute it once instead of on every call.
        a, b = self.novelty_exponent, self.understanding_exponent
        peak_d = a / (a + b)
        object.__setattr__(
            self, "_peak", (peak_d**a) * ((1.0 - peak_d) ** b)
        )

    def learning_value(self, distance: float) -> float:
        """Inverted-U value of an interaction at ``distance``, in [0, 1].

        Normalised so the peak value is exactly 1.0.
        """
        if not 0.0 <= distance <= 1.0:
            raise ValueError(f"distance must be in [0,1], got {distance}")
        raw = (distance**self.novelty_exponent) * (
            (1.0 - distance) ** self.understanding_exponent
        )
        peak = self._peak
        return raw / peak if peak > 0 else 0.0

    def learning_values(self, distances: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`learning_value` over an array of distances.

        Bit-equal to mapping :meth:`learning_value` element by element.
        With the default unit exponents ``d**1.0`` is exactly ``d``
        (IEEE pow), so the scalar formula reduces to ``d*(1-d)/peak``
        and vectorizes exactly.  Non-unit exponents go through libm's
        ``pow``, whose NumPy counterpart can differ in the last ulp, so
        that case falls back to the scalar map.
        """
        distances = np.asarray(distances, dtype=float)
        if distances.size and (
            float(distances.min()) < 0.0 or float(distances.max()) > 1.0
        ):
            bad = [d for d in distances.tolist() if not 0.0 <= d <= 1.0]
            raise ValueError(f"distance must be in [0,1], got {bad[0]}")
        peak = self._peak
        if self.novelty_exponent == 1.0 and self.understanding_exponent == 1.0:
            raw = distances * (1.0 - distances)
            return raw / peak if peak > 0 else np.zeros_like(distances)
        return np.fromiter(
            (self.learning_value(d) for d in distances.tolist()),
            dtype=float,
            count=distances.size,
        )

    def transfer_rate(
        self,
        a: KnowledgeVector,
        b: KnowledgeVector,
        hours: float = 1.0,
        cultural_distance: float = 0.0,
    ) -> float:
        """Fraction of the proficiency gap absorbed during joint work.

        The rate saturates with hours (diminishing returns within a
        single working session) and is attenuated by cultural distance.
        """
        if hours < 0:
            raise ValueError(f"hours must be non-negative, got {hours}")
        if not 0.0 <= cultural_distance <= 1.0:
            raise ValueError(
                f"cultural_distance must be in [0,1], got {cultural_distance}"
            )
        value = self.learning_value(cognitive_distance(a, b))
        cultural_factor = 1.0 - self.cultural_attenuation * cultural_distance
        # Saturating time response: 1h -> ~0.39 of asymptote, 4h -> ~0.86.
        time_factor = 1.0 - math.exp(-hours / 2.0)
        return self.max_transfer_rate * value * cultural_factor * time_factor

    def exchange(
        self,
        a: KnowledgeVector,
        b: KnowledgeVector,
        hours: float = 1.0,
        cultural_distance: float = 0.0,
    ) -> tuple:
        """Mutual learning: both parties absorb from each other.

        Returns the pair of updated vectors ``(a', b')``.
        """
        rate = self.transfer_rate(a, b, hours, cultural_distance)
        return a.absorb(b, rate), b.absorb(a, rate)


def optimal_distance(model: LearningModel) -> float:
    """Cognitive distance at which ``model`` attains peak learning value."""
    a, b = model.novelty_exponent, model.understanding_exponent
    return a / (a + b)
