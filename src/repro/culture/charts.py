"""Country-comparison chart data (the paper's Fig. 1).

Fig. 1 of the paper reproduces a Hofstede Insights comparison chart: a
grouped bar chart with one group per dimension and one bar per country.
:func:`comparison_chart` returns that chart as structured data, and
:func:`render_ascii_chart` renders it as text for benches and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.culture.hofstede import (
    MEGAMART_COUNTRIES,
    Dimension,
    profile_for,
)

__all__ = ["ChartSeries", "comparison_chart", "render_ascii_chart"]

#: Short labels used on the Hofstede Insights chart axes.
DIMENSION_LABELS: Dict[Dimension, str] = {
    Dimension.POWER_DISTANCE: "Power Distance",
    Dimension.INDIVIDUALISM: "Individualism",
    Dimension.MASCULINITY: "Masculinity",
    Dimension.UNCERTAINTY_AVOIDANCE: "Uncertainty Avoidance",
    Dimension.LONG_TERM_ORIENTATION: "Long Term Orientation",
    Dimension.INDULGENCE: "Indulgence",
}


@dataclass(frozen=True)
class ChartSeries:
    """One country's bar series across the six dimension groups."""

    country: str
    values: Tuple[int, ...]  # in canonical Dimension order

    def value_for(self, dimension: Dimension) -> int:
        return self.values[list(Dimension).index(dimension)]


def comparison_chart(
    countries: Sequence[str] = MEGAMART_COUNTRIES,
) -> List[ChartSeries]:
    """Structured Fig. 1 data: one series per country."""
    return [
        ChartSeries(country=c, values=profile_for(c).as_vector())
        for c in countries
    ]


def render_ascii_chart(
    countries: Sequence[str] = MEGAMART_COUNTRIES, width: int = 40
) -> str:
    """Render the comparison chart as ASCII horizontal bars.

    One block per dimension, one bar per country, bar length
    proportional to the 0–100 score.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    series = comparison_chart(countries)
    name_width = max(len(s.country) for s in series)
    lines: List[str] = []
    for dim in Dimension:
        lines.append(f"{DIMENSION_LABELS[dim]} ({dim.value.upper()})")
        for s in series:
            value = s.value_for(dim)
            bar = "#" * max(1, round(value / 100 * width))
            lines.append(f"  {s.country:<{name_width}} |{bar:<{width}}| {value:3d}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def extreme_scores(
    countries: Sequence[str] = MEGAMART_COUNTRIES,
) -> Dict[Dimension, Tuple[str, str]]:
    """Per dimension, the (lowest-scoring, highest-scoring) country.

    Benches use this to assert the chart's qualitative shape, e.g. that
    Sweden scores lowest on Masculinity among the consortium countries.
    """
    out: Dict[Dimension, Tuple[str, str]] = {}
    for dim in Dimension:
        scored = sorted(countries, key=lambda c: (profile_for(c).score(dim), c))
        out[dim] = (scored[0], scored[-1])
    return out
