"""Cultural distance indices over Hofstede profiles.

Two standard operationalisations are provided:

* the **Kogut–Singh index** — mean of variance-normalised squared score
  differences (the canonical composite in international-business
  research), and
* a normalised **Euclidean distance** in [0, 1] for use as an
  attenuation factor in the learning model.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.culture.hofstede import (
    MEGAMART_COUNTRIES,
    Dimension,
    dimension_variance,
    profile_for,
)

__all__ = [
    "kogut_singh_index",
    "euclidean_distance",
    "normalized_distance",
    "pairwise_matrix",
    "cached_pairwise_matrix",
    "most_distant_pair",
    "CulturalDistanceModel",
]

#: Normalised distances are pure functions of the (static) Hofstede
#: table, so every model instance — one per simulation run — shares one
#: process-wide cache instead of recomputing profile lookups per run.
_SHARED_PAIR_CACHE: Dict[Tuple[str, str], float] = {}

#: Memoized pairwise matrices keyed by (countries, metric); stored
#: read-only so cached results cannot be corrupted by callers.
_SHARED_MATRIX_CACHE: Dict[Tuple[Tuple[str, ...], str], np.ndarray] = {}


def kogut_singh_index(
    country_a: str,
    country_b: str,
    reference_countries: Iterable[str] = MEGAMART_COUNTRIES,
) -> float:
    """Kogut–Singh composite distance between two countries.

    ``KS(a,b) = (1/6) * sum_d (score_a_d - score_b_d)^2 / var_d`` where
    the per-dimension variance is computed over ``reference_countries``.
    Zero iff the two profiles are identical.
    """
    pa, pb = profile_for(country_a), profile_for(country_b)
    variances = dimension_variance(reference_countries)
    total = 0.0
    for dim in Dimension:
        var = variances[dim]
        if var <= 0.0:
            continue
        total += (pa.score(dim) - pb.score(dim)) ** 2 / var
    return total / len(Dimension)


def euclidean_distance(country_a: str, country_b: str) -> float:
    """Plain Euclidean distance between the two 6-d score vectors."""
    va = np.array(profile_for(country_a).as_vector(), dtype=float)
    vb = np.array(profile_for(country_b).as_vector(), dtype=float)
    return float(np.linalg.norm(va - vb))


#: Maximum possible Euclidean distance between two profiles (all six
#: dimensions differing by the full 0-100 range).
_MAX_EUCLIDEAN = math.sqrt(6 * 100.0**2)


def normalized_distance(country_a: str, country_b: str) -> float:
    """Euclidean distance scaled to [0, 1] — the learning model's input."""
    return euclidean_distance(country_a, country_b) / _MAX_EUCLIDEAN


def pairwise_matrix(
    countries: Sequence[str],
    metric: str = "kogut_singh",
) -> np.ndarray:
    """Symmetric distance matrix over ``countries``.

    Parameters
    ----------
    metric:
        ``"kogut_singh"``, ``"euclidean"`` or ``"normalized"``.
    """
    metrics = {
        "kogut_singh": lambda a, b: kogut_singh_index(a, b, countries)
        if len(countries) >= 2
        else 0.0,
        "euclidean": euclidean_distance,
        "normalized": normalized_distance,
    }
    if metric not in metrics:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {sorted(metrics)}"
        )
    fn = metrics[metric]
    n = len(countries)
    matrix = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            d = fn(countries[i], countries[j])
            matrix[i, j] = d
            matrix[j, i] = d
    return matrix


def cached_pairwise_matrix(
    countries: Sequence[str],
    metric: str = "kogut_singh",
) -> np.ndarray:
    """Memoized :func:`pairwise_matrix` (returned array is read-only).

    The Hofstede table is static, so a (countries, metric) pair always
    yields the same matrix; simulation code that rebuilds models per
    run should prefer this entry point.
    """
    key = (tuple(countries), metric)
    matrix = _SHARED_MATRIX_CACHE.get(key)
    if matrix is None:
        matrix = pairwise_matrix(countries, metric)
        matrix.flags.writeable = False
        _SHARED_MATRIX_CACHE[key] = matrix
    return matrix


def most_distant_pair(
    countries: Sequence[str], metric: str = "kogut_singh"
) -> Tuple[str, str, float]:
    """The pair of countries with the largest distance under ``metric``."""
    if len(countries) < 2:
        raise ValueError("need at least two countries")
    matrix = cached_pairwise_matrix(countries, metric)
    flat_idx = int(np.argmax(matrix))
    i, j = divmod(flat_idx, len(countries))
    return countries[i], countries[j], float(matrix[i, j])


class CulturalDistanceModel:
    """Cached normalised distances, keyed by unordered country pair.

    The simulator queries cultural distance for every interacting pair of
    members; caching avoids recomputing profile lookups in the hot loop.
    The cache is shared process-wide (the Hofstede table is static), so
    per-run model instances warm each other.  Same-country pairs have
    distance zero by definition.
    """

    def __init__(self) -> None:
        self._cache = _SHARED_PAIR_CACHE

    def distance(self, country_a: str, country_b: str) -> float:
        """Normalised [0, 1] distance between two countries."""
        if country_a == country_b:
            return 0.0
        if country_a < country_b:
            key = (country_a, country_b)
        else:
            key = (country_b, country_a)
        value = self._cache.get(key)
        if value is None:
            value = self._cache[key] = normalized_distance(*key)
        return value

    def mean_distance(self, countries: Sequence[str]) -> float:
        """Mean pairwise distance over a group of countries."""
        if len(countries) < 2:
            return 0.0
        total, count = 0.0, 0
        for i in range(len(countries)):
            for j in range(i + 1, len(countries)):
                total += self.distance(countries[i], countries[j])
                count += 1
        return total / count

    def ranked_pairs(
        self, countries: Sequence[str]
    ) -> List[Tuple[str, str, float]]:
        """All pairs sorted by distance descending."""
        rows = []
        for i in range(len(countries)):
            for j in range(i + 1, len(countries)):
                a, b = countries[i], countries[j]
                rows.append((a, b, self.distance(a, b)))
        rows.sort(key=lambda row: (-row[2], row[0], row[1]))
        return rows
