"""Hofstede's six cultural dimensions, with published country scores.

The paper (Sec. III-A, Fig. 1) uses the Hofstede Insights country
comparison to argue that the six MegaM@Rt2 countries differ culturally
in ways that affect collaboration.  This module encodes the model: the
six dimensions, their definitions, and the published 0–100 scores for
the project countries plus a few extras used in examples.

Scores are the commonly cited Hofstede Insights values (accessed values
match the chart reproduced in the paper's Fig. 1 era, 2018).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.errors import UnknownCountryError

__all__ = [
    "Dimension",
    "HofstedeProfile",
    "COUNTRY_SCORES",
    "profile_for",
    "known_countries",
    "MEGAMART_COUNTRIES",
]


class Dimension(enum.Enum):
    """The six Hofstede dimensions as enumerated in the paper."""

    POWER_DISTANCE = "pdi"
    INDIVIDUALISM = "idv"
    MASCULINITY = "mas"
    UNCERTAINTY_AVOIDANCE = "uai"
    LONG_TERM_ORIENTATION = "lto"
    INDULGENCE = "ivr"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_DESCRIPTIONS: Dict[Dimension, str] = {
    Dimension.POWER_DISTANCE: (
        "Extent to which the less powerful members of society accept that "
        "power is distributed unequally."
    ),
    Dimension.INDIVIDUALISM: (
        "Individualist versus collectivist: whether people look after "
        "themselves and their immediate family only, or belong to in-groups."
    ),
    Dimension.MASCULINITY: (
        "Dominant values are achievement and success versus caring for "
        "others and quality of life."
    ),
    Dimension.UNCERTAINTY_AVOIDANCE: (
        "Extent to which people feel threatened by uncertainty and ambiguity "
        "and try to avoid such situations."
    ),
    Dimension.LONG_TERM_ORIENTATION: (
        "Extent to which people show a pragmatic, future-oriented perspective "
        "rather than a normative, short-term point of view."
    ),
    Dimension.INDULGENCE: (
        "Extent to which people try to control their desires and impulses."
    ),
}


@dataclass(frozen=True)
class HofstedeProfile:
    """A country's six dimension scores, each on the 0–100 scale."""

    country: str
    pdi: int
    idv: int
    mas: int
    uai: int
    lto: int
    ivr: int

    def __post_init__(self) -> None:
        for dim in Dimension:
            score = getattr(self, dim.value)
            if not 0 <= score <= 100:
                raise ValueError(
                    f"{self.country}: {dim.value} score must be in [0,100], "
                    f"got {score}"
                )

    def score(self, dimension: Dimension) -> int:
        """Score on ``dimension``."""
        return int(getattr(self, dimension.value))

    def as_dict(self) -> Dict[str, int]:
        return {dim.value: self.score(dim) for dim in Dimension}

    def as_vector(self) -> Tuple[int, ...]:
        """Scores in canonical :class:`Dimension` order."""
        return tuple(self.score(dim) for dim in Dimension)


#: Published Hofstede Insights scores.  The first six are the MegaM@Rt2
#: consortium countries (paper Sec. III-A); the rest appear in examples.
COUNTRY_SCORES: Dict[str, HofstedeProfile] = {
    profile.country: profile
    for profile in (
        HofstedeProfile("Finland", pdi=33, idv=63, mas=26, uai=59, lto=38, ivr=57),
        HofstedeProfile("Sweden", pdi=31, idv=71, mas=5, uai=29, lto=53, ivr=78),
        HofstedeProfile(
            "Czech Republic", pdi=57, idv=58, mas=57, uai=74, lto=70, ivr=29
        ),
        HofstedeProfile("Italy", pdi=50, idv=76, mas=70, uai=75, lto=61, ivr=30),
        HofstedeProfile("Spain", pdi=57, idv=51, mas=42, uai=86, lto=48, ivr=44),
        HofstedeProfile("France", pdi=68, idv=71, mas=43, uai=86, lto=63, ivr=48),
        # Extras for examples / the Innopolis coordinator affiliation.
        HofstedeProfile("Russia", pdi=93, idv=39, mas=36, uai=95, lto=81, ivr=20),
        HofstedeProfile("Germany", pdi=35, idv=67, mas=66, uai=65, lto=83, ivr=40),
        HofstedeProfile(
            "Netherlands", pdi=38, idv=80, mas=14, uai=53, lto=67, ivr=68
        ),
        HofstedeProfile(
            "United Kingdom", pdi=35, idv=89, mas=66, uai=35, lto=51, ivr=69
        ),
    )
}

#: The six consortium countries as listed in the paper (Sec. III-A).
MEGAMART_COUNTRIES: Tuple[str, ...] = (
    "Finland",
    "Sweden",
    "Czech Republic",
    "Italy",
    "Spain",
    "France",
)


def profile_for(country: str) -> HofstedeProfile:
    """Look up the profile for ``country``.

    Raises
    ------
    UnknownCountryError
        If no scores are recorded for ``country``.
    """
    try:
        return COUNTRY_SCORES[country]
    except KeyError:
        raise UnknownCountryError(country) from None


def known_countries() -> List[str]:
    """Countries with recorded scores, sorted alphabetically."""
    return sorted(COUNTRY_SCORES)


def dimension_variance(countries: Iterable[str] = MEGAMART_COUNTRIES) -> Dict[
    Dimension, float
]:
    """Sample variance of each dimension over ``countries``.

    Used by the Kogut–Singh index, which normalises squared score
    differences by the per-dimension variance.
    """
    profiles = [profile_for(c) for c in countries]
    if len(profiles) < 2:
        raise ValueError("need at least two countries to compute variance")
    variances: Dict[Dimension, float] = {}
    for dim in Dimension:
        scores = [p.score(dim) for p in profiles]
        mean = sum(scores) / len(scores)
        variances[dim] = sum((s - mean) ** 2 for s in scores) / (len(scores) - 1)
    return variances


def comparison_table(
    countries: Iterable[str] = MEGAMART_COUNTRIES,
) -> List[Tuple[str, Mapping[str, int]]]:
    """Rows of ``(country, {dimension_code: score})`` — the Fig. 1 data."""
    return [(c, profile_for(c).as_dict()) for c in countries]
