"""Cultural-distance substrate (Hofstede model, paper Fig. 1).

Public API:

* :class:`HofstedeProfile`, :data:`COUNTRY_SCORES`, :func:`profile_for`
* :func:`kogut_singh_index`, :func:`normalized_distance`,
  :class:`CulturalDistanceModel`
* :func:`comparison_chart`, :func:`render_ascii_chart` (Fig. 1)
"""

from repro.culture.charts import (
    ChartSeries,
    comparison_chart,
    extreme_scores,
    render_ascii_chart,
)
from repro.culture.distance import (
    CulturalDistanceModel,
    euclidean_distance,
    kogut_singh_index,
    most_distant_pair,
    normalized_distance,
    pairwise_matrix,
)
from repro.culture.hofstede import (
    COUNTRY_SCORES,
    MEGAMART_COUNTRIES,
    Dimension,
    HofstedeProfile,
    comparison_table,
    dimension_variance,
    known_countries,
    profile_for,
)

__all__ = [
    "COUNTRY_SCORES",
    "MEGAMART_COUNTRIES",
    "ChartSeries",
    "CulturalDistanceModel",
    "Dimension",
    "HofstedeProfile",
    "comparison_chart",
    "comparison_table",
    "dimension_variance",
    "euclidean_distance",
    "extreme_scores",
    "known_countries",
    "kogut_singh_index",
    "most_distant_pair",
    "normalized_distance",
    "pairwise_matrix",
    "profile_for",
    "render_ascii_chart",
]
