"""Per-session engagement of attendees.

The complaint that triggered the whole intervention — "the content was
too administrative or managerial... many participants feel disengaged
and consider plenary meetings as a waste of time" — becomes a measurable
quantity here: engagement in [0, 1] per member per agenda item, driven
by the match between the session format and the member's role.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.consortium.member import Member
from repro.errors import ConfigurationError
from repro.meetings.agenda import AgendaItem, SessionFormat
from repro.rng import RngHub

__all__ = ["EngagementModel", "EngagementRecord"]

#: Mean engagement by (format, is_technical).  Technical staff disengage
#: in administrative slots and light up in hands-on sessions; managers
#: the other way around (paper Secs. III-B, V).
_BASE_ENGAGEMENT: Dict[SessionFormat, Dict[bool, float]] = {
    SessionFormat.ADMINISTRATIVE: {False: 0.70, True: 0.25},
    SessionFormat.PRESENTATION: {False: 0.55, True: 0.35},
    SessionFormat.TECHNICAL_WORKSHOP: {False: 0.35, True: 0.70},
    SessionFormat.HACKATHON: {False: 0.45, True: 0.90},
    SessionFormat.SOCIAL: {False: 0.60, True: 0.60},
}


@dataclass(frozen=True)
class EngagementRecord:
    """Realised engagement of one member in one agenda item."""

    member_id: str
    item_title: str
    format: SessionFormat
    engagement: float


class EngagementModel:
    """Samples engagement values.

    Parameters
    ----------
    noise_sd:
        Standard deviation of the per-sample Gaussian noise.
    energy_weight:
        How strongly a member's remaining energy scales engagement —
        a burned-out member cannot engage even in a format they love.
    """

    def __init__(
        self, hub: RngHub, noise_sd: float = 0.08, energy_weight: float = 0.5
    ) -> None:
        if noise_sd < 0:
            raise ConfigurationError(f"noise_sd must be >= 0, got {noise_sd}")
        if not 0.0 <= energy_weight <= 1.0:
            raise ConfigurationError(
                f"energy_weight must be in [0,1], got {energy_weight}"
            )
        self._rng = hub.stream("engagement")
        self.noise_sd = noise_sd
        self.energy_weight = energy_weight

    def expected(self, member: Member, fmt: SessionFormat) -> float:
        """Noise-free expected engagement."""
        base = _BASE_ENGAGEMENT[fmt][member.is_technical]
        energy_factor = 1.0 - self.energy_weight * (1.0 - member.energy)
        return base * energy_factor

    def sample(self, member: Member, item: AgendaItem) -> EngagementRecord:
        """Sample realised engagement for one member in one session."""
        value = self.expected(member, item.format) + self._rng.normal(
            0.0, self.noise_sd
        )
        return EngagementRecord(
            member_id=member.member_id,
            item_title=item.title,
            format=item.format,
            engagement=min(1.0, max(0.0, float(value))),
        )

    def sample_many(
        self, members: List[Member], item: AgendaItem
    ) -> List[EngagementRecord]:
        """Sample one record per member with a single batched noise draw.

        Bit-identical to calling :meth:`sample` per member in order:
        NumPy generators fill vectorized draws from the same stream
        sequence as repeated scalar draws.
        """
        if not members:
            return []
        fmt, title = item.format, item.title
        base = _BASE_ENGAGEMENT[fmt]
        base_t, base_f = base[True], base[False]
        # expected() computed for the whole roster in one array pass:
        # base * (1 - energy_weight * (1 - energy)), identical op order.
        bases = np.fromiter(
            (base_t if m._is_technical else base_f for m in members),
            dtype=float,
            count=len(members),
        )
        energies = np.fromiter(
            (m.energy for m in members), dtype=float, count=len(members)
        )
        values = self._rng.normal(0.0, self.noise_sd, size=len(members))
        values += bases * (1.0 - self.energy_weight * (1.0 - energies))
        np.clip(values, 0.0, 1.0, out=values)
        return [
            EngagementRecord(
                member_id=member.member_id,
                item_title=title,
                format=fmt,
                engagement=engagement,
            )
            for member, engagement in zip(members, values.tolist())
        ]

    @staticmethod
    def scale_many(
        records: List[EngagementRecord], factor: float
    ) -> List[EngagementRecord]:
        """Rebuild ``records`` with engagement scaled by ``factor``.

        One vectorized multiply for the whole roster; elementwise
        ``engagement * factor`` is the same IEEE operation either way,
        so the result is bit-identical to scaling record by record.
        """
        if not records:
            return []
        scaled = np.fromiter(
            (r.engagement for r in records), dtype=float, count=len(records)
        )
        scaled *= factor
        return [
            EngagementRecord(
                member_id=record.member_id,
                item_title=record.item_title,
                format=record.format,
                engagement=engagement,
            )
            for record, engagement in zip(records, scaled.tolist())
        ]

    @staticmethod
    def by_item(records: List[EngagementRecord]) -> Dict[str, float]:
        """Mean engagement per agenda item title."""
        sums: Dict[str, List[float]] = {}
        for rec in records:
            sums.setdefault(rec.item_title, []).append(rec.engagement)
        return {title: sum(v) / len(v) for title, v in sums.items()}

    @staticmethod
    def by_member(records: List[EngagementRecord]) -> Dict[str, float]:
        """Mean engagement per member across the whole meeting."""
        sums: Dict[str, List[float]] = {}
        for rec in records:
            sums.setdefault(rec.member_id, []).append(rec.engagement)
        return {mid: sum(v) / len(v) for mid, v in sums.items()}
