"""Who actually travels to the plenary.

The paper's diagnosis of traditional plenaries: "many partners apply
cost savings and send managers only without involving the technical
staff".  :class:`AttendancePolicy` models that decision per
organisation: a manager always goes; technical staff go with a
probability that *rises* with the agenda's technical appeal and *falls*
with the organisation's funding cost pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.consortium.consortium import Consortium
from repro.consortium.funding import FundingScheme, default_ecsel_scheme
from repro.consortium.member import Member
from repro.errors import ConfigurationError
from repro.meetings.agenda import Agenda
from repro.rng import RngHub

__all__ = ["Delegation", "AttendancePolicy"]


@dataclass(frozen=True)
class Delegation:
    """The members one organisation sends to a plenary."""

    org_id: str
    member_ids: tuple

    def __len__(self) -> int:
        return len(self.member_ids)


class AttendancePolicy:
    """Stochastic delegation model.

    Parameters
    ----------
    base_technical_probability:
        Chance a given technical member attends when the agenda has no
        technical content and the organisation feels no cost pressure.
    technical_appeal_weight:
        How strongly the agenda's technical fraction raises that chance.
        A hackathon-day agenda (technical fraction ~0.5) roughly doubles
        technical attendance — the paper's intended effect.
    cost_pressure_weight:
        How strongly an organisation's own-contribution fraction lowers
        the chance.
    max_delegates_per_org:
        Travel-budget cap on delegation size.
    """

    def __init__(
        self,
        hub: RngHub,
        funding: Optional[FundingScheme] = None,
        base_technical_probability: float = 0.25,
        technical_appeal_weight: float = 0.9,
        cost_pressure_weight: float = 0.35,
        max_delegates_per_org: int = 5,
    ) -> None:
        if not 0.0 <= base_technical_probability <= 1.0:
            raise ConfigurationError(
                "base_technical_probability must be in [0,1], got "
                f"{base_technical_probability}"
            )
        if technical_appeal_weight < 0 or cost_pressure_weight < 0:
            raise ConfigurationError("appeal/pressure weights must be >= 0")
        if max_delegates_per_org < 1:
            raise ConfigurationError(
                f"max_delegates_per_org must be >= 1, got {max_delegates_per_org}"
            )
        self._rng = hub.stream("attendance")
        self._funding = funding or default_ecsel_scheme()
        self.base_technical_probability = base_technical_probability
        self.technical_appeal_weight = technical_appeal_weight
        self.cost_pressure_weight = cost_pressure_weight
        self.max_delegates_per_org = max_delegates_per_org

    def technical_probability(self, org_pressure: float, agenda: Agenda) -> float:
        """Per-member attendance probability for technical staff."""
        p = (
            self.base_technical_probability
            + self.technical_appeal_weight * agenda.technical_fraction()
            - self.cost_pressure_weight * org_pressure
        )
        return min(1.0, max(0.0, p))

    def delegation_for(
        self,
        consortium: Consortium,
        org_id: str,
        agenda: Agenda,
        pressure_relief: float = 0.0,
    ) -> Delegation:
        """Sample the delegation of one organisation.

        ``pressure_relief`` (0-1) removes that fraction of the travel
        cost pressure — virtual meetings set it to 1.0 because nobody
        travels.
        """
        if not 0.0 <= pressure_relief <= 1.0:
            raise ConfigurationError(
                f"pressure_relief must be in [0,1], got {pressure_relief}"
            )
        org = consortium.organization(org_id)
        members = consortium.members_of(org_id)
        managers = [m for m in members if not m.is_technical]
        technical = [m for m in members if m.is_technical]

        chosen: List[str] = []
        # One manager (or, failing that, any member) always attends.
        if managers:
            chosen.append(managers[0].member_id)
        elif members:
            chosen.append(members[0].member_id)

        pressure = self._funding.cost_pressure(org) * (1.0 - pressure_relief)
        p_tech = self.technical_probability(pressure, agenda)
        for member in technical:
            if len(chosen) >= self.max_delegates_per_org:
                break
            if self._rng.random() < p_tech:
                chosen.append(member.member_id)
        return Delegation(org_id=org_id, member_ids=tuple(chosen))

    def delegations(
        self,
        consortium: Consortium,
        agenda: Agenda,
        pressure_relief: float = 0.0,
    ) -> Dict[str, Delegation]:
        """Sample delegations for every organisation."""
        return {
            org.org_id: self.delegation_for(
                consortium, org.org_id, agenda, pressure_relief
            )
            for org in consortium.organizations
        }

    @staticmethod
    def attendees(
        consortium: Consortium, delegations: Dict[str, Delegation]
    ) -> List[Member]:
        """Flatten delegations into a sorted list of members."""
        ids = sorted(
            mid for d in delegations.values() for mid in d.member_ids
        )
        return consortium.subset_members(ids)

    @staticmethod
    def technical_share(
        consortium: Consortium, delegations: Dict[str, Delegation]
    ) -> float:
        """Fraction of attendees who are technical staff."""
        members = AttendancePolicy.attendees(consortium, delegations)
        if not members:
            return 0.0
        return sum(1 for m in members if m.is_technical) / len(members)
