"""The plenary-meeting simulator.

:class:`PlenaryMeeting` runs an agenda over a consortium: it samples who
attends, how engaged they are per session, and which cross-member
interactions happen; interactions strengthen network ties and exchange
knowledge through the inverted-U learning model.

Hackathon agenda items are special: the meeting delegates them to a
*hackathon handler* (normally :class:`repro.core.HackathonEvent` wired
in by the simulation runner), keeping this module independent of the
core package.  Without a handler, hackathon slots fall back to intense
generic mixing — useful for quick what-if runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cognition.knowledge import KnowledgeVector
from repro.cognition.learning import LearningModel
from repro.consortium.consortium import Consortium
from repro.consortium.member import Member
from repro.culture.distance import CulturalDistanceModel
from repro.errors import ConfigurationError
from repro.meetings.agenda import Agenda, AgendaItem, SessionFormat
from repro.meetings.attendance import AttendancePolicy
from repro.meetings.engagement import EngagementModel, EngagementRecord
from repro.meetings.mode import MODE_EFFECTS, MeetingMode, ModeEffects
from repro.network.dynamics import Interaction, TieDynamics
from repro.network.graph import CollaborationNetwork
from repro.rng import RngHub

__all__ = ["MeetingResult", "MeetingSession", "PlenaryMeeting", "HackathonHandler"]

#: Signature of the pluggable hackathon handler: given the agenda item
#: and the attendees, produce the interactions the hackathon generated
#: (the handler may carry richer state of its own, e.g. demos and votes).
HackathonHandler = Callable[[AgendaItem, List[Member]], List[Interaction]]

#: Energy drained per generic meeting hour (hackathon drain is owned by
#: the hackathon engine, which is far more intense).
_GENERIC_FATIGUE_PER_HOUR = 0.01


@dataclass
class MeetingResult:
    """Everything one plenary produced."""

    meeting_name: str
    agenda_name: str
    attendee_ids: List[str]
    technical_share: float
    mode: MeetingMode = MeetingMode.FACE_TO_FACE
    engagement_records: List[EngagementRecord] = field(default_factory=list)
    interactions: List[Interaction] = field(default_factory=list)
    knowledge_transferred: float = 0.0
    new_ties: List[Tuple[str, str]] = field(default_factory=list)
    new_inter_org_ties: List[Tuple[str, str]] = field(default_factory=list)
    #: New ties pairing a case-study-owner member with a tool-provider
    #: member — the paper's "notably between tool providers and use
    #: case owners" observation, now reported per meeting.
    new_provider_owner_ties: List[Tuple[str, str]] = field(default_factory=list)
    #: Attendees who joined through the remote lane of a hybrid plenary
    #: with per-participant lanes (empty otherwise).
    remote_attendee_ids: List[str] = field(default_factory=list)

    def engagement_by_item(self) -> Dict[str, float]:
        return EngagementModel.by_item(self.engagement_records)

    def engagement_by_member(self) -> Dict[str, float]:
        return EngagementModel.by_member(self.engagement_records)

    def mean_engagement(self) -> float:
        if not self.engagement_records:
            return 0.0
        return sum(r.engagement for r in self.engagement_records) / len(
            self.engagement_records
        )


class MeetingSession:
    """One plenary in progress, steppable agenda item by agenda item.

    :meth:`PlenaryMeeting.run` drives a session start to finish; the
    batched engine (:mod:`repro.simulation.batch`) instead interleaves
    many sessions — one per seed lane — preparing each agenda item on
    every lane and then applying the exchanges across all lanes at once.
    The per-lane sequence of operations (and RNG draws) is identical
    either way, which is what keeps the two paths bit-equal.
    """

    def __init__(
        self,
        meeting: "PlenaryMeeting",
        agenda: Agenda,
        meeting_name: str,
        hackathon_handler: Optional[HackathonHandler],
        mode: MeetingMode,
        effects: Optional[ModeEffects] = None,
        remote_share: Optional[float] = None,
    ) -> None:
        self.meeting = meeting
        self.agenda = agenda
        self.hackathon_handler = hackathon_handler
        self.mode = mode
        self.effects = effects if effects is not None else MODE_EFFECTS[mode]
        self._before = meeting.network.snapshot()
        delegations = meeting.attendance.delegations(
            meeting.consortium, agenda,
            pressure_relief=self.effects.attendance_cost_relief,
        )
        self.attendees = AttendancePolicy.attendees(
            meeting.consortium, delegations
        )
        if not self.attendees:
            raise ConfigurationError("no attendees — consortium has no members?")
        self.result = MeetingResult(
            meeting_name=meeting_name,
            agenda_name=agenda.name,
            attendee_ids=[m.member_id for m in self.attendees],
            technical_share=AttendancePolicy.technical_share(
                meeting.consortium, delegations
            ),
            mode=mode,
        )
        # Hybrid per-participant lanes: each attendee is dealt into the
        # remote or on-site lane from a dedicated substream, so enabling
        # lanes never perturbs any classic stream.  Remote members carry
        # the virtual mode's engagement/intensity depth, on-site members
        # the face-to-face reference; a cross-lane interaction runs at
        # the mean of its two endpoints' depths.
        self.lane_engagement: Dict[str, float] = {}
        self.lane_intensity: Dict[str, float] = {}
        if remote_share is not None:
            virtual = MODE_EFFECTS[MeetingMode.VIRTUAL]
            rng = meeting._hub.stream("hybrid_lanes")
            draws = rng.random(len(self.attendees))
            remote_ids = []
            for member, draw in zip(self.attendees, draws.tolist()):
                if draw < remote_share:
                    remote_ids.append(member.member_id)
                    self.lane_engagement[member.member_id] = (
                        virtual.engagement_factor
                    )
                    self.lane_intensity[member.member_id] = (
                        virtual.intensity_factor
                    )
            self.result.remote_attendee_ids = remote_ids
        # Per-member depth factors: lane factors (above) combined with
        # the meeting's free-rider factors.  Empty for classic runs, so
        # the hot path below stays byte-identical.
        self._member_engagement: Dict[str, float] = dict(self.lane_engagement)
        self._member_intensity: Dict[str, float] = dict(self.lane_intensity)
        for mid, factor in meeting.member_factors.items():
            self._member_engagement[mid] = (
                self._member_engagement.get(mid, 1.0) * factor
            )
            self._member_intensity[mid] = (
                self._member_intensity.get(mid, 1.0) * factor
            )

    def prepare_item(self, item: AgendaItem) -> List[Interaction]:
        """Sample engagement and interactions for one item (pre-exchange)."""
        meeting = self.meeting
        effects = self.effects
        records = meeting.engagement.sample_many(self.attendees, item)
        if effects.engagement_factor < 1.0:
            records = EngagementModel.scale_many(
                records, effects.engagement_factor
            )
        if self._member_engagement:
            member_engagement = self._member_engagement
            records = [
                EngagementRecord(
                    member_id=r.member_id,
                    item_title=r.item_title,
                    format=r.format,
                    engagement=(
                        r.engagement * member_engagement.get(r.member_id, 1.0)
                    ),
                )
                for r in records
            ]
        self.result.engagement_records.extend(records)

        if (
            item.format is SessionFormat.HACKATHON
            and self.hackathon_handler is not None
        ):
            interactions = self.hackathon_handler(item, self.attendees)
        else:
            interactions = meeting._generic_interactions(
                item, self.attendees, effects
            )
            for member in self.attendees:
                member.drain_energy(_GENERIC_FATIGUE_PER_HOUR * item.hours)

        if effects.intensity_factor < 1.0:
            interactions = [
                Interaction(
                    member_a=i.member_a,
                    member_b=i.member_b,
                    intensity=i.intensity * effects.intensity_factor,
                    context=i.context,
                )
                for i in interactions
            ]
        if self._member_intensity:
            member_intensity = self._member_intensity
            interactions = [
                Interaction(
                    member_a=i.member_a,
                    member_b=i.member_b,
                    intensity=i.intensity * 0.5 * (
                        member_intensity.get(i.member_a, 1.0)
                        + member_intensity.get(i.member_b, 1.0)
                    ),
                    context=i.context,
                )
                for i in interactions
            ]
        return interactions

    def apply_item(self, interactions: List[Interaction]) -> None:
        """Run the knowledge exchange a prepared item produced."""
        self.meeting._apply_interactions(interactions, self.result)
        self.result.interactions.extend(interactions)

    def finish(self) -> MeetingResult:
        """Classify the ties the meeting created and seal the result."""
        meeting, result = self.meeting, self.result
        result.new_ties = meeting.network.new_ties_since(self._before)
        owners = {o.org_id for o in meeting.consortium.case_study_owners}
        providers = {o.org_id for o in meeting.consortium.tool_providers}
        for a, b in result.new_ties:
            org_a, org_b = meeting.network.org_of(a), meeting.network.org_of(b)
            if org_a != org_b:
                result.new_inter_org_ties.append((a, b))
                if (org_a in owners and org_b in providers) or (
                    org_a in providers and org_b in owners
                ):
                    result.new_provider_owner_ties.append((a, b))
        return result


class PlenaryMeeting:
    """Simulates one plenary meeting end to end."""

    def __init__(
        self,
        consortium: Consortium,
        network: CollaborationNetwork,
        hub: RngHub,
        attendance: Optional[AttendancePolicy] = None,
        engagement: Optional[EngagementModel] = None,
        dynamics: Optional[TieDynamics] = None,
        learning: Optional[LearningModel] = None,
        culture: Optional[CulturalDistanceModel] = None,
        member_factors: Optional[Dict[str, float]] = None,
        outbound_factors: Optional[Dict[str, float]] = None,
    ) -> None:
        self.consortium = consortium
        self.network = network
        self._hub = hub
        self._rng = hub.stream("plenary")
        self.attendance = attendance or AttendancePolicy(hub)
        self.engagement = engagement or EngagementModel(hub)
        self.dynamics = dynamics or TieDynamics()
        self.learning = learning or LearningModel()
        self.culture = culture or CulturalDistanceModel()
        #: member_id -> engagement/intensity depth factor (free-riders);
        #: member_id -> outbound transfer factor (knowledge withholding).
        #: Both empty for classic runs — the kernels below special-case
        #: the empty dicts so default arithmetic is untouched.
        self.member_factors: Dict[str, float] = dict(member_factors or {})
        self.outbound_factors: Dict[str, float] = dict(outbound_factors or {})
        # Make sure every member has a network node.
        for member in consortium.members:
            network.add_member(member.member_id, member.org_id)
        # Member -> country is static for the consortium's lifetime;
        # resolve it once instead of per interaction in the hot loop.
        self._country_of: Dict[str, str] = {
            member.member_id: consortium.organization_of(member).country
            for member in consortium.members
        }

    # -- public API ---------------------------------------------------------

    def run(
        self,
        agenda: Agenda,
        meeting_name: str = "plenary",
        hackathon_handler: Optional[HackathonHandler] = None,
        mode: MeetingMode = MeetingMode.FACE_TO_FACE,
    ) -> MeetingResult:
        """Simulate the full plenary and return its result.

        ``mode`` selects face-to-face (the reference), virtual or
        hybrid; virtual meetings attract more attendees (no travel) but
        attenuate mixing, interaction depth and engagement — the
        trade-off the paper cites when arguing for co-located
        hackathons.
        """
        session = self.begin(agenda, meeting_name, hackathon_handler, mode)
        for item in agenda:
            session.apply_item(session.prepare_item(item))
        return session.finish()

    def begin(
        self,
        agenda: Agenda,
        meeting_name: str = "plenary",
        hackathon_handler: Optional[HackathonHandler] = None,
        mode: MeetingMode = MeetingMode.FACE_TO_FACE,
        effects: Optional[ModeEffects] = None,
        remote_share: Optional[float] = None,
    ) -> MeetingSession:
        """Open a steppable session (attendance is sampled here).

        ``effects`` overrides the mode's default attenuation factors
        (scenario plugins compose mode defaults with their own scales);
        ``remote_share`` switches a hybrid plenary to per-participant
        face-to-face/remote lanes.
        """
        return MeetingSession(
            self, agenda, meeting_name, hackathon_handler, mode,
            effects=effects, remote_share=remote_share,
        )

    # -- internals ----------------------------------------------------------

    def _apply_interactions(
        self, interactions: List[Interaction], result: MeetingResult
    ) -> None:
        """Apply a whole item's interactions in one batched pass.

        The item's participants are stacked into one dense knowledge
        matrix and every exchange mutates rows in place, so the
        sequential dependency (each exchange shifts the cognitive
        distance the next one sees) is preserved while the per-exchange
        cost drops to a handful of fused array ops — no KnowledgeVector
        allocation until the batch write-back.  Tie strengthening is
        aggregated per pair: one network mutation per distinct pair
        instead of one per interaction, which also keeps the network's
        derived-view caches warm.
        """
        if not interactions:
            return
        consortium = self.consortium
        members: Dict[str, Member] = {}
        for interaction in interactions:
            for mid in (interaction.member_a, interaction.member_b):
                if mid not in members:
                    members[mid] = consortium.member(mid)
        index = {mid: i for i, mid in enumerate(members)}
        # The dense matrix rows are unboxed into plain Python lists for
        # the sequential loop below: profile widths (~14 domains) are far
        # below the break-even point where NumPy's per-call dispatch pays
        # for itself, and the loop is inherently serial (each exchange
        # shifts the cognitive distance the next one sees).
        rows = KnowledgeVector.stack(
            m.knowledge for m in members.values()
        ).tolist()
        norms = [math.sqrt(sum(x * x for x in row)) for row in rows]
        start_total = sum(map(sum, rows))

        learning = self.learning
        learning_value = learning.learning_value
        max_rate = learning.max_transfer_rate
        attenuation = learning.cultural_attenuation
        country_of = self._country_of
        culture_distance = self.culture.distance
        cultural_factor: Dict[Tuple[str, str], float] = {}
        pair_intensity: Dict[Tuple[str, str], float] = {}
        outbound = self.outbound_factors
        exp = math.exp
        for interaction in interactions:
            id_a, id_b = interaction.member_a, interaction.member_b
            pair = (id_a, id_b) if id_a <= id_b else (id_b, id_a)
            intensity = interaction.intensity
            pair_intensity[pair] = pair_intensity.get(pair, 0.0) + intensity
            ia, ib = index[id_a], index[id_b]
            row_a, row_b = rows[ia], rows[ib]
            na, nb = norms[ia], norms[ib]
            if na == 0.0 or nb == 0.0:
                # Empty profiles share no frame of reference — maximal
                # distance, matching cognitive_distance's convention.
                distance = 1.0
            else:
                dot = 0.0
                for x, y in zip(row_a, row_b):
                    dot += x * y
                distance = 1.0 - min(1.0, max(0.0, dot / (na * nb)))
            factor = cultural_factor.get(pair)
            if factor is None:
                factor = 1.0 - attenuation * culture_distance(
                    country_of[id_a], country_of[id_b]
                )
                cultural_factor[pair] = factor
            hours = intensity if intensity > 0.25 else 0.25
            # Saturating time response as in LearningModel.transfer_rate.
            rate = (
                max_rate
                * learning_value(distance)
                * factor
                * (1.0 - exp(-hours / 2.0))
            )
            if rate == 0.0:
                continue
            # Mutual absorb toward the domain-wise max (KnowledgeVector
            # .absorb): a' = a + rate*max(b-a, 0), b' = b + rate*max(a-b, 0).
            # A withholding participant caps what *others* absorb from
            # them: the rate toward a is scaled by b's outbound factor
            # and vice versa.  ``rate_a is rate`` on the classic path,
            # so default arithmetic is bitwise untouched.
            rate_a = rate_b = rate
            if outbound:
                rate_a = rate * outbound.get(id_b, 1.0)
                rate_b = rate * outbound.get(id_a, 1.0)
            for j, x in enumerate(row_a):
                y = row_b[j]
                if y > x:
                    row_a[j] = x + rate_a * (y - x)
                elif x > y:
                    row_b[j] = y + rate_b * (x - y)
            sq = 0.0
            for x in row_a:
                sq += x * x
            norms[ia] = math.sqrt(sq)
            sq = 0.0
            for x in row_b:
                sq += x * x
            norms[ib] = math.sqrt(sq)

        # Absorption only ever raises proficiencies, so the item's total
        # knowledge gain is the matrix-sum delta.
        result.knowledge_transferred += sum(map(sum, rows)) - start_total
        for mid, i in index.items():
            members[mid].knowledge = KnowledgeVector._from_array(
                np.array(rows[i])
            )
        consortium.bump_knowledge_version()
        rate = self.dynamics.strengthen_rate
        strengthen = self.network.strengthen
        for (id_a, id_b), intensity in pair_intensity.items():
            strengthen(id_a, id_b, rate * intensity)

    def _generic_interactions(
        self,
        item: AgendaItem,
        attendees: List[Member],
        effects: ModeEffects = MODE_EFFECTS[MeetingMode.FACE_TO_FACE],
    ) -> List[Interaction]:
        """Sample corridor/session interactions for a non-team session."""
        if len(attendees) < 2:
            return []
        expected = (
            item.format.mixing_rate
            * effects.mixing_factor
            * item.hours
            * len(attendees)
            / 2.0
        )
        count = int(self._rng.poisson(expected))
        by_org: Dict[str, List[Member]] = {}
        for m in attendees:
            by_org.setdefault(m.org_id, []).append(m)
        # Candidate pools and noise-free engagement are fixed for the
        # whole item (energy only drains after sampling), so build them
        # once instead of per sampled interaction.
        cross_org: Dict[str, List[Member]] = {
            org: [m for m in attendees if m.org_id != org] for org in by_org
        }
        expected_engagement = {
            m.member_id: self.engagement.expected(m, item.format)
            for m in attendees
        }

        interactions: List[Interaction] = []
        intensity_scale = item.format.interaction_intensity
        for _ in range(count):
            a = attendees[int(self._rng.integers(0, len(attendees)))]
            b = self._pick_partner(a, by_org, cross_org, item.format.same_org_bias)
            if b is None:
                continue
            mean_engagement = 0.5 * (
                expected_engagement[a.member_id]
                + expected_engagement[b.member_id]
            )
            interactions.append(
                Interaction(
                    member_a=a.member_id,
                    member_b=b.member_id,
                    intensity=intensity_scale * mean_engagement,
                    context=item.title,
                )
            )
        return interactions

    def _pick_partner(
        self,
        a: Member,
        by_org: Dict[str, List[Member]],
        cross_org: Dict[str, List[Member]],
        same_org_bias: float,
    ) -> Optional[Member]:
        same_org = [m for m in by_org.get(a.org_id, []) if m is not a]
        other_org = cross_org.get(a.org_id, [])
        use_same = self._rng.random() < same_org_bias
        pool = same_org if (use_same and same_org) else other_org
        if not pool:
            pool = same_org or other_org
        if not pool:
            return None
        return pool[int(self._rng.integers(0, len(pool)))]

