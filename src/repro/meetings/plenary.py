"""The plenary-meeting simulator.

:class:`PlenaryMeeting` runs an agenda over a consortium: it samples who
attends, how engaged they are per session, and which cross-member
interactions happen; interactions strengthen network ties and exchange
knowledge through the inverted-U learning model.

Hackathon agenda items are special: the meeting delegates them to a
*hackathon handler* (normally :class:`repro.core.HackathonEvent` wired
in by the simulation runner), keeping this module independent of the
core package.  Without a handler, hackathon slots fall back to intense
generic mixing — useful for quick what-if runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cognition.learning import LearningModel
from repro.consortium.consortium import Consortium
from repro.consortium.member import Member
from repro.culture.distance import CulturalDistanceModel
from repro.errors import ConfigurationError
from repro.meetings.agenda import Agenda, AgendaItem, SessionFormat
from repro.meetings.attendance import AttendancePolicy
from repro.meetings.engagement import EngagementModel, EngagementRecord
from repro.meetings.mode import MODE_EFFECTS, MeetingMode, ModeEffects
from repro.network.dynamics import Interaction, TieDynamics
from repro.network.graph import CollaborationNetwork
from repro.rng import RngHub

__all__ = ["MeetingResult", "PlenaryMeeting", "HackathonHandler"]

#: Signature of the pluggable hackathon handler: given the agenda item
#: and the attendees, produce the interactions the hackathon generated
#: (the handler may carry richer state of its own, e.g. demos and votes).
HackathonHandler = Callable[[AgendaItem, List[Member]], List[Interaction]]

#: Energy drained per generic meeting hour (hackathon drain is owned by
#: the hackathon engine, which is far more intense).
_GENERIC_FATIGUE_PER_HOUR = 0.01


@dataclass
class MeetingResult:
    """Everything one plenary produced."""

    meeting_name: str
    agenda_name: str
    attendee_ids: List[str]
    technical_share: float
    mode: MeetingMode = MeetingMode.FACE_TO_FACE
    engagement_records: List[EngagementRecord] = field(default_factory=list)
    interactions: List[Interaction] = field(default_factory=list)
    knowledge_transferred: float = 0.0
    new_ties: List[Tuple[str, str]] = field(default_factory=list)
    new_inter_org_ties: List[Tuple[str, str]] = field(default_factory=list)

    def engagement_by_item(self) -> Dict[str, float]:
        return EngagementModel.by_item(self.engagement_records)

    def engagement_by_member(self) -> Dict[str, float]:
        return EngagementModel.by_member(self.engagement_records)

    def mean_engagement(self) -> float:
        if not self.engagement_records:
            return 0.0
        return sum(r.engagement for r in self.engagement_records) / len(
            self.engagement_records
        )


class PlenaryMeeting:
    """Simulates one plenary meeting end to end."""

    def __init__(
        self,
        consortium: Consortium,
        network: CollaborationNetwork,
        hub: RngHub,
        attendance: Optional[AttendancePolicy] = None,
        engagement: Optional[EngagementModel] = None,
        dynamics: Optional[TieDynamics] = None,
        learning: Optional[LearningModel] = None,
        culture: Optional[CulturalDistanceModel] = None,
    ) -> None:
        self.consortium = consortium
        self.network = network
        self._hub = hub
        self._rng = hub.stream("plenary")
        self.attendance = attendance or AttendancePolicy(hub)
        self.engagement = engagement or EngagementModel(hub)
        self.dynamics = dynamics or TieDynamics()
        self.learning = learning or LearningModel()
        self.culture = culture or CulturalDistanceModel()
        # Make sure every member has a network node.
        for member in consortium.members:
            network.add_member(member.member_id, member.org_id)

    # -- public API ---------------------------------------------------------

    def run(
        self,
        agenda: Agenda,
        meeting_name: str = "plenary",
        hackathon_handler: Optional[HackathonHandler] = None,
        mode: MeetingMode = MeetingMode.FACE_TO_FACE,
    ) -> MeetingResult:
        """Simulate the full plenary and return its result.

        ``mode`` selects face-to-face (the reference), virtual or
        hybrid; virtual meetings attract more attendees (no travel) but
        attenuate mixing, interaction depth and engagement — the
        trade-off the paper cites when arguing for co-located
        hackathons.
        """
        effects = MODE_EFFECTS[mode]
        before = self.network.snapshot()
        delegations = self.attendance.delegations(
            self.consortium, agenda,
            pressure_relief=effects.attendance_cost_relief,
        )
        attendees = AttendancePolicy.attendees(self.consortium, delegations)
        if not attendees:
            raise ConfigurationError("no attendees — consortium has no members?")

        result = MeetingResult(
            meeting_name=meeting_name,
            agenda_name=agenda.name,
            attendee_ids=[m.member_id for m in attendees],
            technical_share=AttendancePolicy.technical_share(
                self.consortium, delegations
            ),
            mode=mode,
        )
        for item in agenda:
            self._run_item(item, attendees, result, hackathon_handler, effects)

        result.new_ties = self.network.new_ties_since(before)
        owners = {o.org_id for o in self.consortium.case_study_owners}
        providers = {o.org_id for o in self.consortium.tool_providers}
        result.new_inter_org_ties = [
            (a, b)
            for a, b in result.new_ties
            if self.network.org_of(a) != self.network.org_of(b)
        ]
        return result

    # -- internals ----------------------------------------------------------

    def _run_item(
        self,
        item: AgendaItem,
        attendees: List[Member],
        result: MeetingResult,
        hackathon_handler: Optional[HackathonHandler],
        effects: ModeEffects,
    ) -> None:
        for member in attendees:
            record = self.engagement.sample(member, item)
            if effects.engagement_factor < 1.0:
                record = EngagementRecord(
                    member_id=record.member_id,
                    item_title=record.item_title,
                    format=record.format,
                    engagement=record.engagement * effects.engagement_factor,
                )
            result.engagement_records.append(record)

        if item.format is SessionFormat.HACKATHON and hackathon_handler is not None:
            interactions = hackathon_handler(item, attendees)
        else:
            interactions = self._generic_interactions(item, attendees, effects)
            for member in attendees:
                member.drain_energy(_GENERIC_FATIGUE_PER_HOUR * item.hours)

        if effects.intensity_factor < 1.0:
            interactions = [
                Interaction(
                    member_a=i.member_a,
                    member_b=i.member_b,
                    intensity=i.intensity * effects.intensity_factor,
                    context=i.context,
                )
                for i in interactions
            ]
        for interaction in interactions:
            self.dynamics.apply_interaction(self.network, interaction)
            result.knowledge_transferred += self._exchange_knowledge(interaction)
        result.interactions.extend(interactions)

    def _generic_interactions(
        self,
        item: AgendaItem,
        attendees: List[Member],
        effects: ModeEffects = MODE_EFFECTS[MeetingMode.FACE_TO_FACE],
    ) -> List[Interaction]:
        """Sample corridor/session interactions for a non-team session."""
        if len(attendees) < 2:
            return []
        expected = (
            item.format.mixing_rate
            * effects.mixing_factor
            * item.hours
            * len(attendees)
            / 2.0
        )
        count = int(self._rng.poisson(expected))
        by_org: Dict[str, List[Member]] = {}
        for m in attendees:
            by_org.setdefault(m.org_id, []).append(m)

        interactions: List[Interaction] = []
        for _ in range(count):
            a = attendees[int(self._rng.integers(0, len(attendees)))]
            b = self._pick_partner(a, attendees, by_org, item.format.same_org_bias)
            if b is None:
                continue
            mean_engagement = 0.5 * (
                self.engagement.expected(a, item.format)
                + self.engagement.expected(b, item.format)
            )
            interactions.append(
                Interaction(
                    member_a=a.member_id,
                    member_b=b.member_id,
                    intensity=item.format.interaction_intensity * mean_engagement,
                    context=item.title,
                )
            )
        return interactions

    def _pick_partner(
        self,
        a: Member,
        attendees: List[Member],
        by_org: Dict[str, List[Member]],
        same_org_bias: float,
    ) -> Optional[Member]:
        same_org = [m for m in by_org.get(a.org_id, []) if m is not a]
        other_org = [m for m in attendees if m.org_id != a.org_id]
        use_same = self._rng.random() < same_org_bias
        pool = same_org if (use_same and same_org) else other_org
        if not pool:
            pool = same_org or other_org
        if not pool:
            return None
        return pool[int(self._rng.integers(0, len(pool)))]

    def _exchange_knowledge(self, interaction: Interaction) -> float:
        """Apply mutual learning for one interaction; return the gain."""
        a = self.consortium.member(interaction.member_a)
        b = self.consortium.member(interaction.member_b)
        cultural = self.culture.distance(
            self.consortium.organization_of(a).country,
            self.consortium.organization_of(b).country,
        )
        before = a.knowledge.total() + b.knowledge.total()
        new_a, new_b = self.learning.exchange(
            a.knowledge,
            b.knowledge,
            hours=max(0.25, interaction.intensity),
            cultural_distance=cultural,
        )
        a.knowledge, b.knowledge = new_a, new_b
        return (new_a.total() + new_b.total()) - before
