"""Meeting cost model and return-on-investment accounting.

The paper's failure mode is economic: "many partners apply cost savings
and send managers only", making "the output of plenary meetings...
questionable" — i.e. plenaries had a bad cost/benefit ratio.  This
module prices a plenary (travel + person-hours) so benches can compute
*cost per collaboration outcome* and show that the hackathon buys far
more per euro, even though it sends more (and more expensive) people.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.consortium.consortium import Consortium
from repro.errors import ConfigurationError
from repro.meetings.mode import MODE_EFFECTS
from repro.meetings.plenary import MeetingResult

__all__ = ["CostParameters", "MeetingCostReport", "price_meeting"]


@dataclass(frozen=True)
class CostParameters:
    """Unit costs in EUR.

    ``travel_cost_domestic`` applies when the member's organisation is
    in the host country; ``travel_cost_international`` otherwise.
    Virtual attendance costs no travel at all.
    """

    travel_cost_domestic: float = 250.0
    travel_cost_international: float = 700.0
    hourly_rate: float = 80.0
    hotel_per_day: float = 140.0

    def __post_init__(self) -> None:
        for name in ("travel_cost_domestic", "travel_cost_international",
                     "hourly_rate", "hotel_per_day"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")


@dataclass(frozen=True)
class MeetingCostReport:
    """Priced plenary with its headline efficiency ratios."""

    meeting_name: str
    attendees: int
    travel_cost: float
    time_cost: float
    accommodation_cost: float

    @property
    def total_cost(self) -> float:
        return self.travel_cost + self.time_cost + self.accommodation_cost

    def cost_per(self, outcome_count: float) -> float:
        """Cost per unit of outcome; infinite when nothing was produced."""
        if outcome_count < 0:
            raise ConfigurationError(
                f"outcome count must be >= 0, got {outcome_count}"
            )
        if outcome_count == 0:
            return float("inf")
        return self.total_cost / outcome_count


def price_meeting(
    result: MeetingResult,
    consortium: Consortium,
    host_country: str,
    meeting_hours: float,
    days: int = 2,
    params: Optional[CostParameters] = None,
) -> MeetingCostReport:
    """Price one plenary from its attendance record.

    Virtual meetings incur time cost only (scaled by the same hours);
    hybrid meetings halve travel (half the delegates stay home, matching
    the mode's 0.5 cost relief).
    """
    if meeting_hours <= 0:
        raise ConfigurationError(
            f"meeting_hours must be > 0, got {meeting_hours}"
        )
    if days < 1:
        raise ConfigurationError(f"days must be >= 1, got {days}")
    params = params or CostParameters()
    effects = MODE_EFFECTS[result.mode]
    travel_fraction = 1.0 - effects.attendance_cost_relief

    travel = 0.0
    accommodation = 0.0
    for member_id in result.attendee_ids:
        org = consortium.organization_of(consortium.member(member_id))
        per_trip = (
            params.travel_cost_domestic
            if org.country == host_country
            else params.travel_cost_international
        )
        travel += per_trip * travel_fraction
        accommodation += params.hotel_per_day * days * travel_fraction

    time_cost = len(result.attendee_ids) * meeting_hours * params.hourly_rate
    return MeetingCostReport(
        meeting_name=result.meeting_name,
        attendees=len(result.attendee_ids),
        travel_cost=travel,
        time_cost=time_cost,
        accommodation_cost=accommodation,
    )
