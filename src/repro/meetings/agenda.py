"""Plenary meeting agendas.

The paper's intervention is, at bottom, an *agenda change*: instead of
filling plenaries with administrative slots and one-way presentations,
one day becomes a hackathon.  Agendas are therefore first-class values:
a list of :class:`AgendaItem` with formats and durations, plus factory
functions for the traditional and hackathon-style agendas.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "SessionFormat",
    "AgendaItem",
    "Agenda",
    "traditional_agenda",
    "hackathon_agenda",
    "interleaved_agenda",
]


class SessionFormat(enum.Enum):
    """Kinds of plenary sessions, with very different interaction profiles."""

    ADMINISTRATIVE = "administrative"  # status reporting, planning
    PRESENTATION = "presentation"  # one-way WP presentations
    TECHNICAL_WORKSHOP = "technical_workshop"  # discussion-style technical slot
    HACKATHON = "hackathon"  # challenge-based team work
    SOCIAL = "social"  # dinners, coffee, corridor time

    @property
    def is_technical(self) -> bool:
        return self in (SessionFormat.TECHNICAL_WORKSHOP, SessionFormat.HACKATHON)

    @property
    def mixing_rate(self) -> float:
        """Expected cross-member interactions per attendee per hour."""
        return {
            SessionFormat.ADMINISTRATIVE: 0.15,
            SessionFormat.PRESENTATION: 0.25,
            SessionFormat.TECHNICAL_WORKSHOP: 0.8,
            SessionFormat.HACKATHON: 1.2,
            SessionFormat.SOCIAL: 1.0,
        }[self]

    @property
    def interaction_intensity(self) -> float:
        """Depth of a single interaction in this format."""
        return {
            SessionFormat.ADMINISTRATIVE: 0.3,
            SessionFormat.PRESENTATION: 0.3,
            SessionFormat.TECHNICAL_WORKSHOP: 0.7,
            SessionFormat.HACKATHON: 1.0,
            SessionFormat.SOCIAL: 0.5,
        }[self]

    @property
    def same_org_bias(self) -> float:
        """Probability an interaction stays within one organisation.

        Presentations and admin sessions keep colleagues sitting
        together; hackathon teams are deliberately cross-organisation.
        """
        return {
            SessionFormat.ADMINISTRATIVE: 0.7,
            SessionFormat.PRESENTATION: 0.65,
            SessionFormat.TECHNICAL_WORKSHOP: 0.35,
            SessionFormat.HACKATHON: 0.15,
            SessionFormat.SOCIAL: 0.45,
        }[self]


@dataclass(frozen=True)
class AgendaItem:
    """One slot of the plenary agenda."""

    title: str
    format: SessionFormat
    hours: float

    def __post_init__(self) -> None:
        if not self.title:
            raise ConfigurationError("agenda item title must be non-empty")
        if self.hours <= 0:
            raise ConfigurationError(
                f"{self.title!r}: duration must be positive, got {self.hours}"
            )


class Agenda:
    """An ordered sequence of agenda items."""

    def __init__(self, name: str, items: List[AgendaItem]) -> None:
        if not items:
            raise ConfigurationError(f"agenda {name!r} must have at least one item")
        self.name = name
        self._items = list(items)

    @property
    def items(self) -> List[AgendaItem]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def total_hours(self) -> float:
        return sum(item.hours for item in self._items)

    def hours_by_format(self) -> dict:
        out = {fmt: 0.0 for fmt in SessionFormat}
        for item in self._items:
            out[item.format] += item.hours
        return out

    def technical_fraction(self) -> float:
        """Fraction of agenda hours in technical formats.

        This is the "balance of managerial and technical staff across
        meeting days" dial the organisers turned after Rome.
        """
        technical = sum(
            item.hours for item in self._items if item.format.is_technical
        )
        return technical / self.total_hours()

    def has_hackathon(self) -> bool:
        return any(item.format is SessionFormat.HACKATHON for item in self._items)

    def hackathon_items(self) -> List[AgendaItem]:
        return [i for i in self._items if i.format is SessionFormat.HACKATHON]

    def parts(self) -> List[Tuple[str, SessionFormat]]:
        """(title, format) pairs — the options of the "best part" survey."""
        return [(item.title, item.format) for item in self._items]


def traditional_agenda(days: int = 2) -> Agenda:
    """The Rome-style plenary: administrative slots and presentations.

    Each day holds 4 h of administration/reporting and 3 h of one-way
    work-package presentations, plus a social evening slot.
    """
    if days < 1:
        raise ConfigurationError(f"days must be >= 1, got {days}")
    items: List[AgendaItem] = []
    for day in range(1, days + 1):
        items.append(
            AgendaItem(f"Day {day}: project status & planning",
                       SessionFormat.ADMINISTRATIVE, 4.0)
        )
        items.append(
            AgendaItem(f"Day {day}: work-package presentations",
                       SessionFormat.PRESENTATION, 3.0)
        )
        items.append(
            AgendaItem(f"Day {day}: social dinner", SessionFormat.SOCIAL, 1.5)
        )
    return Agenda(name=f"traditional-{days}d", items=items)


def hackathon_agenda(
    days: int = 2,
    session_hours: float = 4.0,
    sessions: int = 2,
) -> Agenda:
    """The Helsinki/Paris-style plenary with a hackathon day.

    Day 1 keeps a reduced administrative programme; day 2 is the
    hackathon: morning pitches, then ``sessions`` working sessions of
    ``session_hours`` each (the paper used 2 x 4 h), then the plenum
    presentation and voting slot.
    """
    if days < 2:
        raise ConfigurationError(
            f"a hackathon plenary needs at least 2 days, got {days}"
        )
    if sessions < 1:
        raise ConfigurationError(f"sessions must be >= 1, got {sessions}")
    items = [
        AgendaItem("Day 1: project status & planning",
                   SessionFormat.ADMINISTRATIVE, 3.0),
        AgendaItem("Day 1: work-package presentations",
                   SessionFormat.PRESENTATION, 2.0),
        AgendaItem("Day 1: technical alignment workshop",
                   SessionFormat.TECHNICAL_WORKSHOP, 2.0),
        AgendaItem("Day 1: social dinner", SessionFormat.SOCIAL, 1.5),
        AgendaItem("Day 2: challenge pitches", SessionFormat.PRESENTATION, 1.0),
    ]
    for s in range(1, sessions + 1):
        items.append(
            AgendaItem(
                f"Day 2: hackathon session {s}",
                SessionFormat.HACKATHON,
                session_hours,
            )
        )
    items.append(
        AgendaItem("Day 2: demo plenum & voting", SessionFormat.PRESENTATION, 1.5)
    )
    # Remaining days (if any) return to coordination work.
    for day in range(3, days + 1):
        items.append(
            AgendaItem(f"Day {day}: coordination sessions",
                       SessionFormat.ADMINISTRATIVE, 4.0)
        )
    return Agenda(name=f"hackathon-{days}d", items=items)


def interleaved_agenda(
    days: int = 2,
    session_hours: float = 2.0,
    sessions_per_day: int = 2,
) -> Agenda:
    """The paper's proposed evolution (Sec. VI, mitigation).

    "We are considering to adjust the hackathon sessions over several
    days of the plenaries, and interleaving them with the project
    coordination sessions to make the two technical and administrative
    aspects more cohesive."

    Every day alternates a coordination block, a hackathon session, a
    reporting block and another hackathon session.  With the defaults
    (2 days x 2 sessions x 2 h) the total hackathon time stays at the
    canonical 8 hours of the 2 x 4 h single-day format, so the two
    layouts are directly comparable.
    """
    if days < 1:
        raise ConfigurationError(f"days must be >= 1, got {days}")
    if sessions_per_day < 1:
        raise ConfigurationError(
            f"sessions_per_day must be >= 1, got {sessions_per_day}"
        )
    items: List[AgendaItem] = []
    for day in range(1, days + 1):
        items.append(
            AgendaItem(f"Day {day}: coordination block",
                       SessionFormat.ADMINISTRATIVE, 2.0)
        )
        for s in range(1, sessions_per_day + 1):
            items.append(
                AgendaItem(
                    f"Day {day}: hackathon session {s}",
                    SessionFormat.HACKATHON,
                    session_hours,
                )
            )
            if s < sessions_per_day:
                items.append(
                    AgendaItem(f"Day {day}: progress reporting {s}",
                               SessionFormat.PRESENTATION, 1.0)
                )
        items.append(
            AgendaItem(f"Day {day}: social dinner", SessionFormat.SOCIAL, 1.0)
        )
    items.append(
        AgendaItem("Final demo plenum & voting", SessionFormat.PRESENTATION, 1.5)
    )
    return Agenda(name=f"interleaved-{days}d", items=items)
