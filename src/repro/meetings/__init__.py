"""Plenary-meeting substrate.

Public API:

* :class:`Agenda`, :class:`AgendaItem`, :class:`SessionFormat`,
  :func:`traditional_agenda`, :func:`hackathon_agenda`
* :class:`AttendancePolicy`, :class:`Delegation`
* :class:`EngagementModel`, :class:`EngagementRecord`
* :class:`PlenaryMeeting`, :class:`MeetingResult`
"""

from repro.meetings.agenda import (
    Agenda,
    AgendaItem,
    SessionFormat,
    hackathon_agenda,
    interleaved_agenda,
    traditional_agenda,
)
from repro.meetings.attendance import AttendancePolicy, Delegation
from repro.meetings.costs import CostParameters, MeetingCostReport, price_meeting
from repro.meetings.engagement import EngagementModel, EngagementRecord
from repro.meetings.mode import MODE_EFFECTS, MeetingMode, ModeEffects
from repro.meetings.plenary import HackathonHandler, MeetingResult, PlenaryMeeting

__all__ = [
    "Agenda",
    "AgendaItem",
    "AttendancePolicy",
    "CostParameters",
    "MeetingCostReport",
    "price_meeting",
    "Delegation",
    "EngagementModel",
    "EngagementRecord",
    "HackathonHandler",
    "MODE_EFFECTS",
    "MeetingMode",
    "MeetingResult",
    "ModeEffects",
    "PlenaryMeeting",
    "SessionFormat",
    "hackathon_agenda",
    "interleaved_agenda",
    "traditional_agenda",
]
