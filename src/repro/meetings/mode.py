"""Face-to-face versus virtual meetings.

The paper justifies holding hackathons at plenaries because "at least
one member of each project organization is typically present and
available for face-to-face meetings.  The latter are considered by
different practitioners more efficient compared to virtual meetings",
citing Morgan's *5 Fatal Flaws with Virtual Meetings* [3].

:class:`MeetingMode` operationalises that: a virtual meeting removes the
travel-cost barrier (everyone can attend) but degrades interaction —
fewer spontaneous encounters, shallower exchanges, and no shared-room
energy.  The multipliers encode Morgan's flaws as attenuation factors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["MeetingMode", "ModeEffects", "MODE_EFFECTS"]


class MeetingMode(enum.Enum):
    """How a plenary is held."""

    FACE_TO_FACE = "face_to_face"
    VIRTUAL = "virtual"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class ModeEffects:
    """Attenuation factors a mode applies to the meeting machinery.

    Attributes
    ----------
    mixing_factor:
        Multiplier on spontaneous cross-member encounters.  Virtual
        meetings have no corridors: unplanned mixing mostly vanishes.
    intensity_factor:
        Multiplier on the depth of each interaction (screen fatigue,
        missing side channels).
    engagement_factor:
        Multiplier on session engagement (Morgan's "multitasking"
        flaw: attention drifts in virtual rooms).
    attendance_cost_relief:
        Fraction of the travel cost pressure removed — the one genuine
        advantage of going virtual.
    productivity_factor:
        Multiplier on hackathon-team hourly productivity.  Remote teams
        coordinate through screens: tool hand-offs, whiteboarding and
        debugging-over-someone's-shoulder all slow down.
    """

    mixing_factor: float
    intensity_factor: float
    engagement_factor: float
    attendance_cost_relief: float
    productivity_factor: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "mixing_factor",
            "intensity_factor",
            "engagement_factor",
            "attendance_cost_relief",
            "productivity_factor",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {value}")


#: Calibration: face-to-face is the reference; virtual halves interaction
#: depth and loses most spontaneous mixing; hybrid sits between.
MODE_EFFECTS = {
    MeetingMode.FACE_TO_FACE: ModeEffects(
        mixing_factor=1.0,
        intensity_factor=1.0,
        engagement_factor=1.0,
        attendance_cost_relief=0.0,
        productivity_factor=1.0,
    ),
    MeetingMode.VIRTUAL: ModeEffects(
        mixing_factor=0.3,
        intensity_factor=0.5,
        engagement_factor=0.7,
        attendance_cost_relief=1.0,
        productivity_factor=0.55,
    ),
    MeetingMode.HYBRID: ModeEffects(
        mixing_factor=0.6,
        intensity_factor=0.75,
        engagement_factor=0.85,
        attendance_cost_relief=0.5,
        productivity_factor=0.8,
    ),
}
