"""Declarative scenario plugin system.

One catalog, many sources: builtin timelines, ``@register_scenario``
plugins (bundled under :mod:`repro.plugins`, installed via the
``repro.plugins`` entry-point group, or pointed at with the
``REPRO_PLUGINS`` environment variable) and ``scenario-spec/v1``
JSON/TOML files.  The CLI, the HTTP service and :mod:`repro.api` all
resolve scenario names through :data:`CATALOG`, so registering a
scenario once makes it usable everywhere.

>>> from repro.registry import CATALOG
>>> CATALOG.resolve("hackathon").name
'megamart-hackathon'
"""

from repro.registry.catalog import (
    CATALOG,
    ScenarioCatalog,
    ScenarioEntry,
    SweepEntry,
    register_scenario,
    register_sweep_parameter,
)
from repro.registry.discovery import ensure_loaded
from repro.registry.specfile import (
    SPEC_KIND,
    load_spec_file,
    looks_like_spec_path,
    scenario_from_spec_mapping,
)

__all__ = [
    "CATALOG",
    "ScenarioCatalog",
    "ScenarioEntry",
    "SweepEntry",
    "register_scenario",
    "register_sweep_parameter",
    "ensure_loaded",
    "SPEC_KIND",
    "load_spec_file",
    "looks_like_spec_path",
    "scenario_from_spec_mapping",
]
