"""Plugin discovery: how scenario definitions reach the catalog.

Three sources load, in order, the first time anything asks the catalog
a question:

1. **Builtins** — the paper's timelines and the bundled plugin families
   under :mod:`repro.plugins`, imported directly so a plain checkout
   works with no packaging metadata.
2. **Entry points** — any installed distribution advertising a module
   in the ``repro.plugins`` entry-point group gets imported; the module
   registers itself via the :func:`~repro.registry.register_scenario`
   decorators at import time.
3. **``REPRO_PLUGINS``** — an ``os.pathsep``-separated list of extra
   sources for ad-hoc use without packaging: each item is either an
   importable module name or a path to a ``scenario-spec/v1``
   JSON/TOML file (registered under ``source="file"``).

Loading is idempotent and thread-safe; a plugin that fails to import
raises :class:`ConfigurationError` naming the offending source, so a
typo in ``REPRO_PLUGINS`` surfaces as a one-line CLI error instead of a
traceback.
"""

from __future__ import annotations

import importlib
import os
import threading
from typing import List

from repro.errors import ConfigurationError

__all__ = ["BUILTIN_PLUGIN_MODULES", "ensure_loaded", "reset_for_tests"]

#: Modules imported unconditionally — each registers its scenarios and
#: sweep parameters at import time.
BUILTIN_PLUGIN_MODULES = (
    "repro.registry.builtin",
    "repro.plugins.virtual",
    "repro.plugins.hybrid",
    "repro.plugins.adversarial",
)

ENTRY_POINT_GROUP = "repro.plugins"
ENV_VAR = "REPRO_PLUGINS"

_lock = threading.RLock()
_loaded = False
_loading = threading.local()


def _import_plugin(module_name: str, origin: str) -> None:
    try:
        importlib.import_module(module_name)
    except ConfigurationError:
        raise
    except ImportError as exc:
        raise ConfigurationError(
            f"cannot import scenario plugin {module_name!r} "
            f"(from {origin}): {exc}"
        )


def _load_entry_points() -> None:
    from importlib import metadata

    try:
        points = metadata.entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 selection API
        points = metadata.entry_points().get(ENTRY_POINT_GROUP, [])
    for point in points:
        _import_plugin(point.value, f"entry point {point.name!r}")


def _load_env_hook() -> None:
    from repro.registry.catalog import CATALOG
    from repro.registry.specfile import load_spec_file, looks_like_spec_path

    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return
    for item in raw.split(os.pathsep):
        item = item.strip()
        if not item:
            continue
        if looks_like_spec_path(item):
            CATALOG.add_scenario(load_spec_file(item))
        else:
            _import_plugin(item, f"{ENV_VAR} environment variable")


def ensure_loaded() -> None:
    """Import every plugin source exactly once per process."""
    global _loaded
    if _loaded:
        return
    if getattr(_loading, "active", False):
        # A catalog query made *by* a plugin while it is being imported
        # must not recurse into loading; the import is already running
        # on this thread.
        return
    with _lock:
        if _loaded:
            return
        # Only the loading thread may skip the lock (via the marker
        # above); everyone else blocks here until the catalog is fully
        # populated, so a concurrent first query can never observe a
        # half-loaded (or empty) catalog.
        _loading.active = True
        try:
            for module_name in BUILTIN_PLUGIN_MODULES:
                _import_plugin(module_name, "builtin plugin list")
            _load_entry_points()
            _load_env_hook()
        finally:
            _loading.active = False
        _loaded = True


def reset_for_tests() -> List[str]:
    """Force the next catalog access to re-run discovery (tests only).

    Returns the list of builtin modules so a test can assert they
    re-register idempotently.
    """
    global _loaded
    with _lock:
        _loaded = False
    return list(BUILTIN_PLUGIN_MODULES)
