"""Builtin catalog entries: the paper's timelines and classic sweeps.

These are the names the CLI and HTTP service accepted before the
registry existed — ``hackathon``, ``traditional``, ``interleaved``,
``virtual`` plus the ``hackathon-everywhere`` stress timeline — now
registered through the same decorators plugins use.  Their factories
are untouched (:mod:`repro.simulation.scenario`), and their provenance
is the ``builtin``/``"1"`` Scenario defaults, so every fingerprint and
KPI stays bit-identical to the pre-registry code paths.
"""

from __future__ import annotations

from repro.registry.catalog import (
    register_scenario,
    register_sweep_parameter,
)
from repro.simulation.scenario import (
    PlenarySpec,
    Scenario,
    baseline_timeline,
    hackathon_everywhere_timeline,
    interleaved_timeline,
    megamart_timeline,
    virtual_timeline,
)

__all__ = []  # everything registers via side effect


@register_scenario(
    "hackathon", source="builtin",
    description="The paper's observed timeline: Rome traditional, then "
                "Helsinki and Paris hackathon plenaries",
)
def _hackathon(seed: int = 0) -> Scenario:
    return megamart_timeline(seed=seed)


@register_scenario(
    "traditional", source="builtin",
    description="Counterfactual baseline: every plenary stays traditional",
)
def _traditional(seed: int = 0) -> Scenario:
    return baseline_timeline(seed=seed)


@register_scenario(
    "interleaved", source="builtin",
    description="The paper's proposed evolution: hackathon sessions "
                "interleaved with coordination blocks",
)
def _interleaved(seed: int = 0) -> Scenario:
    return interleaved_timeline(seed=seed)


@register_scenario(
    "virtual", source="builtin",
    description="Hackathon timeline delivered over video calls "
                "(uniform virtual mode)",
)
def _virtual(seed: int = 0) -> Scenario:
    return virtual_timeline(seed=seed)


@register_scenario(
    "hackathon-everywhere", source="builtin",
    description="Stress timeline: a hackathon every month for a year "
                "(the paper's burnout warning)",
)
def _hackathon_everywhere(seed: int = 0) -> Scenario:
    return hackathon_everywhere_timeline(seed=seed)


@register_sweep_parameter(
    "cadence", (1.0, 2.0, 6.0),
    label=lambda v: f"every {v:g} months",
    description="Months between hackathons in a six-event timeline",
)
def _cadence_timeline(interval: float, seed: int) -> Scenario:
    return hackathon_everywhere_timeline(
        seed=seed, interval_months=interval, count=6
    )


@register_sweep_parameter(
    "session-hours", (2.0, 4.0, 8.0),
    label=lambda v: f"2 x {v:g} h",
    description="Length of each hackathon session on the paper's timeline",
)
def _session_hours_timeline(hours: float, seed: int) -> Scenario:
    return Scenario(
        name=f"session-{hours}",
        seed=seed,
        plenaries=(
            PlenarySpec("Rome", 0.0, "traditional"),
            PlenarySpec("Helsinki", 6.0, "hackathon", session_hours=hours),
            PlenarySpec("Paris", 12.0, "hackathon", session_hours=hours),
        ),
        horizon_months=18.0,
    )
