"""``scenario-spec/v1``: scenario definitions as JSON or TOML files.

A spec file declares one scenario without writing Python::

    kind = "scenario-spec/v1"
    name = "quarterly-hackathons"
    description = "Hackathon plenary every quarter"

    [scenario]
    followup_enabled = true
    horizon_months = 18.0

    [[plenaries]]
    name = "Rome"
    month = 0.0
    kind = "traditional"

    [[plenaries]]
    name = "Helsinki"
    month = 6.0
    kind = "hackathon"

The same shape works as JSON (``plenaries`` a list of objects,
``scenario`` an object).  Field names and validation come straight from
:class:`~repro.simulation.scenario.Scenario` and
:class:`~repro.simulation.scenario.PlenarySpec` — anything those
dataclasses reject, the loader rejects with the file path prefixed, so
``repro-sim scenarios validate`` failures are one-line actionable.

Loaded specs carry ``plugin="file:<stem>"`` provenance (unless the file
sets ``plugin`` itself), so their cached KPIs never alias a builtin or
plugin scenario of the same name.
"""

from __future__ import annotations

import json
import os
from dataclasses import fields as dc_fields
from typing import Any, Dict, Mapping

from repro.errors import ConfigurationError
from repro.simulation.scenario import PlenarySpec, Scenario

__all__ = [
    "SPEC_KIND",
    "looks_like_spec_path",
    "load_spec_file",
    "load_spec_mapping",
    "scenario_from_spec_mapping",
]

SPEC_KIND = "scenario-spec/v1"

_PLENARY_FIELDS = {f.name for f in dc_fields(PlenarySpec)}
_SCENARIO_FIELDS = {f.name for f in dc_fields(Scenario)}
#: Scenario-table keys a spec file may set: every Scenario field except
#: the ones the spec's top level or the loader itself owns.
_SPEC_SCENARIO_FIELDS = _SCENARIO_FIELDS - {"name", "seed", "plenaries",
                                            "plugin", "spec_version"}
_TOP_LEVEL_KEYS = {"kind", "name", "description", "plugin",
                   "spec_version", "scenario", "plenaries"}


def looks_like_spec_path(spec: str) -> bool:
    """True when a string scenario spec denotes a file, not a name."""
    return (
        os.sep in spec
        or "/" in spec
        or spec.endswith(".json")
        or spec.endswith(".toml")
    )


def _load_toml(path: str) -> Dict[str, Any]:
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        raise ConfigurationError(
            f"{path}: reading TOML scenario specs requires Python 3.11+ "
            f"(tomllib); convert the spec to JSON"
        )
    try:
        with open(path, "rb") as fh:
            return tomllib.load(fh)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid TOML: {exc}")


def _load_json(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            loaded = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid JSON: {exc}")
    if not isinstance(loaded, dict):
        raise ConfigurationError(
            f"{path}: spec file must contain a JSON object, "
            f"got {type(loaded).__name__}"
        )
    return loaded


def load_spec_mapping(path: str) -> Dict[str, Any]:
    """Read and parse a spec file into its raw mapping."""
    if not os.path.exists(path):
        raise ConfigurationError(f"{path}: no such scenario spec file")
    if path.endswith(".toml"):
        return _load_toml(path)
    if path.endswith(".json"):
        return _load_json(path)
    raise ConfigurationError(
        f"{path}: scenario spec files must end in .json or .toml"
    )


def scenario_from_spec_mapping(
    mapping: Mapping[str, Any], *, source: str, seed: int = 0
) -> Scenario:
    """Validate a ``scenario-spec/v1`` mapping and build its Scenario.

    ``source`` names where the mapping came from (a file path or
    ``"inline spec"``) and prefixes every error message.
    """
    kind = mapping.get("kind")
    if kind != SPEC_KIND:
        raise ConfigurationError(
            f"{source}: expected kind = {SPEC_KIND!r}, got {kind!r}"
        )
    unknown = set(mapping) - _TOP_LEVEL_KEYS
    if unknown:
        raise ConfigurationError(
            f"{source}: unknown top-level key(s): "
            f"{', '.join(sorted(unknown))}"
        )
    name = mapping.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"{source}: spec needs a non-empty string 'name'"
        )

    overrides = mapping.get("scenario", {})
    if not isinstance(overrides, Mapping):
        raise ConfigurationError(
            f"{source}: 'scenario' must be a table/object of "
            f"Scenario fields"
        )
    bad = set(overrides) - _SPEC_SCENARIO_FIELDS
    if bad:
        raise ConfigurationError(
            f"{source}: unknown scenario field(s): "
            f"{', '.join(sorted(bad))} "
            f"(allowed: {', '.join(sorted(_SPEC_SCENARIO_FIELDS))})"
        )

    plenaries_raw = mapping.get("plenaries")
    if not isinstance(plenaries_raw, list) or not plenaries_raw:
        raise ConfigurationError(
            f"{source}: spec needs a non-empty 'plenaries' list"
        )
    plenaries = []
    for index, entry in enumerate(plenaries_raw):
        if not isinstance(entry, Mapping):
            raise ConfigurationError(
                f"{source}: plenaries[{index}] must be a table/object"
            )
        bad = set(entry) - _PLENARY_FIELDS
        if bad:
            raise ConfigurationError(
                f"{source}: plenaries[{index}]: unknown field(s): "
                f"{', '.join(sorted(bad))}"
            )
        try:
            plenaries.append(PlenarySpec(**dict(entry)))
        except TypeError as exc:
            raise ConfigurationError(
                f"{source}: plenaries[{index}]: {exc}"
            )
        except ConfigurationError as exc:
            raise ConfigurationError(
                f"{source}: plenaries[{index}]: {exc}"
            )

    plugin = mapping.get("plugin", _default_plugin(source))
    spec_version = str(mapping.get("spec_version", "1"))
    try:
        return Scenario(
            name=name,
            seed=seed,
            plenaries=tuple(plenaries),
            plugin=plugin,
            spec_version=spec_version,
            **dict(overrides),
        )
    except ConfigurationError as exc:
        raise ConfigurationError(f"{source}: {exc}")


def _default_plugin(source: str) -> str:
    stem = os.path.splitext(os.path.basename(source))[0]
    return f"file:{stem}" if stem else "file"


def load_spec_file(path: str) -> "ScenarioEntry":
    """Load a spec file into a catalog-shaped :class:`ScenarioEntry`.

    The entry is *not* registered in the global catalog — file specs
    resolve per use, so editing the file takes effect immediately.
    """
    from repro.registry.catalog import ScenarioEntry

    mapping = load_spec_mapping(path)
    scenario = scenario_from_spec_mapping(mapping, source=path)

    def factory(seed: int = 0) -> Scenario:
        return scenario.with_seed(seed)

    return ScenarioEntry(
        name=scenario.name,
        factory=factory,
        plugin=scenario.plugin,
        spec_version=scenario.spec_version,
        description=str(mapping.get("description", "")),
        source="file",
    )
