"""The scenario catalog: declarative, registrable scenario specs.

Every way of naming a scenario — a builtin timeline, a plugin family, a
``scenario-spec/v1`` file — resolves through one :class:`ScenarioCatalog`.
The CLI, the HTTP API and :mod:`repro.api` all share the module-level
:data:`CATALOG`, so a scenario registered once (via the
:func:`register_scenario` decorator, an ``importlib.metadata`` entry
point, or the ``REPRO_PLUGINS`` path hook — see
:mod:`repro.registry.discovery`) is immediately usable everywhere a
timeline name was accepted before.

Sweepable parameters live in the same catalog
(:func:`register_sweep_parameter`), replacing the private dicts that the
CLI and the HTTP service used to duplicate.

Provenance is part of identity: every entry records the plugin that
registered it and its spec-schema version, both of which ride into the
run-store fingerprint — two plugins registering same-named scenarios
with different bodies (or the same body under different versions) can
never alias each other's cached KPIs.
"""

from __future__ import annotations

import difflib
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs import REGISTRY
from repro.simulation.scenario import Scenario

__all__ = [
    "CATALOG",
    "ScenarioCatalog",
    "ScenarioEntry",
    "SweepEntry",
    "register_scenario",
    "register_sweep_parameter",
]

_CATALOG_SIZE = REGISTRY.gauge(
    "scenario_catalog_size",
    help="Scenario entries currently registered in the catalog",
)


def _record_resolved(source: str) -> None:
    REGISTRY.counter(
        "scenario_resolved_total",
        help="Scenario specs resolved through the catalog, by source",
        source=source,
    ).inc()


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario family.

    ``factory(seed=N)`` must return a fully validated
    :class:`~repro.simulation.scenario.Scenario`; the entry stamps its
    own provenance (plugin name, spec version) onto the result so the
    store fingerprint reflects who defined the scenario.
    """

    name: str
    factory: Callable[..., Scenario]
    plugin: str = "builtin"
    spec_version: str = "1"
    description: str = ""
    source: str = "builtin"  # "builtin" | "plugin" | "file"

    def build(self, seed: int = 0) -> Scenario:
        scenario = self.factory(seed=seed)
        if not isinstance(scenario, Scenario):
            raise ConfigurationError(
                f"scenario {self.name!r}: factory returned "
                f"{type(scenario).__name__}, not a Scenario"
            )
        if (scenario.plugin, scenario.spec_version) != (
            self.plugin, self.spec_version
        ):
            scenario = replace(
                scenario, plugin=self.plugin, spec_version=self.spec_version
            )
        return scenario

    def describe(self) -> Dict[str, Any]:
        scenario = self.build()
        return {
            "name": self.name,
            "plugin": self.plugin,
            "spec_version": self.spec_version,
            "source": self.source,
            "description": self.description,
            "plenaries": len(scenario.plenaries),
            "hackathons": scenario.hackathon_count(),
            "end_month": scenario.end_month,
        }


@dataclass(frozen=True)
class SweepEntry:
    """One registered sweepable parameter.

    ``factory(value, seed)`` builds the scenario for one grid point;
    entries with ``supports_base=True`` additionally accept
    ``factory(value, seed, base=Scenario)`` so ``--scenario`` can point
    the sweep at any registered or file-defined base timeline.
    """

    name: str
    defaults: tuple
    factory: Callable[..., Scenario]
    label: Callable[[Any], str] = field(default=lambda v: f"{v:g}")
    plugin: str = "builtin"
    description: str = ""
    supports_base: bool = False

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "plugin": self.plugin,
            "description": self.description,
            "default_values": list(self.defaults),
            "labels": [self.label(v) for v in self.defaults],
            "supports_base": self.supports_base,
        }


def _close_matches(name: str, known: Sequence[str]) -> str:
    matches = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
    if matches:
        return f"; did you mean: {', '.join(matches)}?"
    return ""


class ScenarioCatalog:
    """Thread-safe registry of scenario and sweep-parameter entries."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._scenarios: Dict[str, ScenarioEntry] = {}
        self._sweeps: Dict[str, SweepEntry] = {}

    # -- registration -----------------------------------------------------

    def add_scenario(self, entry: ScenarioEntry) -> ScenarioEntry:
        with self._lock:
            existing = self._scenarios.get(entry.name)
            if existing is not None:
                if existing.factory is entry.factory:
                    return existing  # idempotent re-import
                raise ConfigurationError(
                    f"scenario {entry.name!r} is already registered by "
                    f"plugin {existing.plugin!r}; pick a different name or "
                    f"unregister it first"
                )
            self._scenarios[entry.name] = entry
            _CATALOG_SIZE.set(len(self._scenarios))
        return entry

    def add_sweep(self, entry: SweepEntry) -> SweepEntry:
        with self._lock:
            existing = self._sweeps.get(entry.name)
            if existing is not None:
                if existing.factory is entry.factory:
                    return existing
                raise ConfigurationError(
                    f"sweep parameter {entry.name!r} is already registered "
                    f"by plugin {existing.plugin!r}"
                )
            self._sweeps[entry.name] = entry
        return entry

    def remove(self, name: str) -> None:
        """Drop one scenario entry (tests and REPL experimentation)."""
        with self._lock:
            self._scenarios.pop(name, None)
            _CATALOG_SIZE.set(len(self._scenarios))

    # -- lookup -----------------------------------------------------------

    def scenario(self, name: str) -> ScenarioEntry:
        from repro.registry.discovery import ensure_loaded

        ensure_loaded()
        with self._lock:
            entry = self._scenarios.get(name)
            known = sorted(self._scenarios)
        if entry is None:
            raise ConfigurationError(
                f"unknown scenario {name!r}"
                f"{_close_matches(name, known)} "
                f"(known: {', '.join(known)})"
            )
        return entry

    def sweep_parameter(self, name: str) -> SweepEntry:
        from repro.registry.discovery import ensure_loaded

        ensure_loaded()
        with self._lock:
            entry = self._sweeps.get(name)
            known = sorted(self._sweeps)
        if entry is None:
            raise ConfigurationError(
                f"unknown sweep parameter {name!r}"
                f"{_close_matches(name, known)} "
                f"(known: {', '.join(known)})"
            )
        return entry

    def scenario_names(self) -> List[str]:
        from repro.registry.discovery import ensure_loaded

        ensure_loaded()
        with self._lock:
            return sorted(self._scenarios)

    def sweep_names(self) -> List[str]:
        from repro.registry.discovery import ensure_loaded

        ensure_loaded()
        with self._lock:
            return sorted(self._sweeps)

    def describe(self) -> Dict[str, Any]:
        """JSON-ready listing for ``GET /v1/scenarios`` and the CLI."""
        return {
            "scenarios": [
                self.scenario(name).describe()
                for name in self.scenario_names()
            ],
            "sweep_parameters": [
                self.sweep_parameter(name).describe()
                for name in self.sweep_names()
            ],
        }

    # -- resolution -------------------------------------------------------

    def resolve(self, spec: Any, seed: int = 0) -> Scenario:
        """Build a :class:`Scenario` from any scenario spec.

        * a registered name (builtin or plugin),
        * a path to a ``scenario-spec/v1`` JSON/TOML file (a string
          containing a path separator or ending in ``.json``/``.toml``),
        * a ``scenario-spec/v1`` mapping (``{"kind": "scenario-spec/v1",
          ...}``), or
        * a legacy inline scenario mapping (``{"plenaries": [...]}``).
        """
        from repro.registry.specfile import (
            looks_like_spec_path,
            scenario_from_spec_mapping,
            load_spec_file,
        )

        if isinstance(spec, str):
            if looks_like_spec_path(spec):
                entry = load_spec_file(spec)
                _record_resolved("file")
                return entry.build(seed=seed)
            entry = self.scenario(spec)
            _record_resolved(entry.source)
            return entry.build(seed=seed)
        if isinstance(spec, Mapping):
            if spec.get("kind") == "scenario-spec/v1":
                scenario = scenario_from_spec_mapping(
                    spec, source="inline spec", seed=seed
                )
                _record_resolved("file")
                return scenario
            scenario = _inline_scenario(spec, seed=seed)
            _record_resolved("inline")
            return scenario
        raise ConfigurationError(
            f"scenario spec must be a name, a spec-file path or a mapping, "
            f"got {type(spec).__name__}"
        )


def _inline_scenario(spec: Mapping[str, Any], seed: int = 0) -> Scenario:
    """Legacy inline scenario mapping -> Scenario (HTTP job payloads)."""
    from dataclasses import fields as dc_fields

    from repro.simulation.scenario import PlenarySpec

    plenary_fields = {f.name for f in dc_fields(PlenarySpec)}
    scenario_fields = {f.name for f in dc_fields(Scenario)}

    payload = dict(spec)
    plenaries_raw = payload.pop("plenaries", None)
    if not isinstance(plenaries_raw, list) or not plenaries_raw:
        raise ConfigurationError(
            "inline scenario needs a non-empty 'plenaries' list"
        )
    unknown = set(payload) - scenario_fields
    if unknown:
        raise ConfigurationError(
            f"unknown scenario field(s): {', '.join(sorted(unknown))}"
        )
    plenaries = []
    for entry in plenaries_raw:
        if not isinstance(entry, Mapping):
            raise ConfigurationError("each plenary must be a mapping")
        bad = set(entry) - plenary_fields
        if bad:
            raise ConfigurationError(
                f"unknown plenary field(s): {', '.join(sorted(bad))}"
            )
        plenaries.append(PlenarySpec(**entry))
    payload.setdefault("name", "inline-scenario")
    payload.setdefault("seed", seed)
    return Scenario(plenaries=tuple(plenaries), **payload)


#: The process-wide catalog every surface resolves through.
CATALOG = ScenarioCatalog()


def register_scenario(
    name: str,
    *,
    plugin: str = "builtin",
    spec_version: str = "1",
    description: str = "",
    source: str = "plugin",
    catalog: Optional[ScenarioCatalog] = None,
) -> Callable[[Callable[..., Scenario]], Callable[..., Scenario]]:
    """Decorator registering a scenario factory under ``name``.

    >>> from repro.registry import register_scenario
    >>> @register_scenario("my-timeline", plugin="my-plugin")
    ... def my_timeline(seed=0):
    ...     ...
    """

    def decorate(factory: Callable[..., Scenario]) -> Callable[..., Scenario]:
        (catalog or CATALOG).add_scenario(ScenarioEntry(
            name=name,
            factory=factory,
            plugin=plugin,
            spec_version=spec_version,
            description=description or (factory.__doc__ or "").strip().split(
                "\n"
            )[0],
            source=source,
        ))
        return factory

    return decorate


def register_sweep_parameter(
    name: str,
    values: Sequence[Any],
    *,
    label: Optional[Callable[[Any], str]] = None,
    plugin: str = "builtin",
    description: str = "",
    supports_base: bool = False,
    catalog: Optional[ScenarioCatalog] = None,
) -> Callable[[Callable[..., Scenario]], Callable[..., Scenario]]:
    """Decorator registering a sweepable parameter with default grid."""

    def decorate(factory: Callable[..., Scenario]) -> Callable[..., Scenario]:
        entry = SweepEntry(
            name=name,
            defaults=tuple(values),
            factory=factory,
            plugin=plugin,
            description=description or (factory.__doc__ or "").strip().split(
                "\n"
            )[0],
            supports_base=supports_base,
        )
        if label is not None:
            entry = replace(entry, label=label)
        (catalog or CATALOG).add_sweep(entry)
        return factory

    return decorate
