"""Evaluation substrate: challenge voting, surveys, comments.

Public API:

* :class:`VotingSystem`, :class:`Criterion`, :class:`Ballot`,
  :class:`ChallengeScore` (Fig. 2)
* :class:`PlenarySurvey`, :class:`SurveyOutcome` (Fig. 3 + acceptance)
* :class:`CommentGenerator`, :class:`SentimentLexicon`, :class:`Comment`,
  :func:`sentiment_histogram` (Fig. 4)
"""

from repro.evaluation.comments import (
    Comment,
    CommentGenerator,
    NEGATIVE_TEMPLATES,
    NEUTRAL_TEMPLATES,
    POSITIVE_TEMPLATES,
    SentimentLexicon,
    sentiment_histogram,
)
from repro.evaluation.questionnaire import (
    LikertItem,
    Questionnaire,
    QuestionnaireResult,
    plenary_acceptance_items,
)
from repro.evaluation.survey import PlenarySurvey, SurveyOutcome
from repro.evaluation.voting import (
    MAX_SCORE,
    Ballot,
    ChallengeScore,
    Criterion,
    VotingSystem,
)

__all__ = [
    "Ballot",
    "ChallengeScore",
    "Comment",
    "CommentGenerator",
    "Criterion",
    "MAX_SCORE",
    "NEGATIVE_TEMPLATES",
    "NEUTRAL_TEMPLATES",
    "POSITIVE_TEMPLATES",
    "LikertItem",
    "PlenarySurvey",
    "Questionnaire",
    "QuestionnaireResult",
    "plenary_acceptance_items",
    "SentimentLexicon",
    "SurveyOutcome",
    "VotingSystem",
    "sentiment_histogram",
]
