"""The anonymous challenge-evaluation voting system.

After the hackathon sessions, "all plenary participants are asked to
evaluate the results of each challenge using an anonymous online voting
system" on four aspects (paper Sec. V-B): technical innovation,
exploitation potential, technological readiness, and entertainment.
:class:`VotingSystem` implements that ballot box: scores 0–5 per
criterion, one ballot per voter per challenge, voter identities hashed
away before storage.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import VotingError

__all__ = ["Criterion", "Ballot", "ChallengeScore", "VotingSystem", "MAX_SCORE"]

MAX_SCORE = 5


class Criterion(enum.Enum):
    """The four evaluation aspects of Sec. V-B."""

    TECHNICAL_INNOVATION = "technical_innovation"
    EXPLOITATION_POTENTIAL = "exploitation_potential"
    TECHNOLOGICAL_READINESS = "technological_readiness"
    ENTERTAINMENT = "entertainment"

    @property
    def question(self) -> str:
        return _QUESTIONS[self]


#: Canonical criterion order, hoisted once — ballot validation runs per
#: (voter, challenge) pair and re-iterating the enum class is measurable.
_CRITERIA: Tuple[Criterion, ...] = tuple(Criterion)

_QUESTIONS: Dict[Criterion, str] = {
    Criterion.TECHNICAL_INNOVATION: (
        "How novel is the presented result — a breakthrough or an evolution?"
    ),
    Criterion.EXPLOITATION_POTENTIAL: (
        "Can this demo be a step to generate revenues, foster market access "
        "and help case-study providers improve their developments?"
    ),
    Criterion.TECHNOLOGICAL_READINESS: (
        "Does the team work look like a finished demonstration we can reuse?"
    ),
    Criterion.ENTERTAINMENT: (
        "Is the result presented in a way that is both instructive and easy "
        "to digest?"
    ),
}


@dataclass(frozen=True)
class Ballot:
    """One anonymous ballot: integer scores 0–5 on every criterion."""

    challenge_id: str
    scores: Mapping[Criterion, int]

    def __post_init__(self) -> None:
        missing = [c for c in _CRITERIA if c not in self.scores]
        if missing:
            raise VotingError(
                f"ballot for {self.challenge_id!r} missing criteria: "
                f"{[c.value for c in missing]}"
            )
        for criterion, score in self.scores.items():
            if not isinstance(score, int) or not 0 <= score <= MAX_SCORE:
                raise VotingError(
                    f"score for {criterion.value} must be an int in "
                    f"[0,{MAX_SCORE}], got {score!r}"
                )


@dataclass(frozen=True)
class ChallengeScore:
    """Aggregated result of one challenge's ballots."""

    challenge_id: str
    ballots: int
    means: Mapping[Criterion, float]

    @property
    def overall(self) -> float:
        """Unweighted mean over the four criteria."""
        return sum(self.means.values()) / len(self.means)

    def profile(self) -> List[Tuple[str, float]]:
        """(criterion, mean) rows in canonical order — the Fig. 2 data."""
        return [(c.value, self.means[c]) for c in Criterion]


class VotingSystem:
    """Anonymous ballot box for one hackathon's challenges.

    Voter ids are hashed (salted with the system's event id) purely to
    enforce one-ballot-per-voter-per-challenge; the stored ballots carry
    no voter information.
    """

    def __init__(self, event_id: str, challenge_ids: Iterable[str]) -> None:
        self._event_id = event_id
        self._challenges = sorted(set(challenge_ids))
        if not self._challenges:
            raise VotingError("a voting system needs at least one challenge")
        self._ballots: Dict[str, List[Ballot]] = {c: [] for c in self._challenges}
        self._seen_tokens: set = set()

    @property
    def challenge_ids(self) -> List[str]:
        return list(self._challenges)

    def _token(self, voter_id: str, challenge_id: str) -> str:
        raw = f"{self._event_id}|{voter_id}|{challenge_id}"
        return hashlib.blake2b(raw.encode("utf-8"), digest_size=12).hexdigest()

    def cast(
        self, voter_id: str, challenge_id: str, scores: Mapping[Criterion, int]
    ) -> None:
        """Record a ballot; rejects unknown challenges and double votes."""
        if challenge_id not in self._ballots:
            raise VotingError(f"unknown challenge {challenge_id!r}")
        token = self._token(voter_id, challenge_id)
        if token in self._seen_tokens:
            raise VotingError(
                f"voter has already cast a ballot for {challenge_id!r}"
            )
        ballot = Ballot(challenge_id=challenge_id, scores=dict(scores))
        self._seen_tokens.add(token)
        self._ballots[challenge_id].append(ballot)

    def ballot_count(self, challenge_id: Optional[str] = None) -> int:
        if challenge_id is None:
            return sum(len(b) for b in self._ballots.values())
        if challenge_id not in self._ballots:
            raise VotingError(f"unknown challenge {challenge_id!r}")
        return len(self._ballots[challenge_id])

    def results(self, challenge_id: str) -> ChallengeScore:
        """Aggregate one challenge's ballots (zero means if no ballots)."""
        if challenge_id not in self._ballots:
            raise VotingError(f"unknown challenge {challenge_id!r}")
        ballots = self._ballots[challenge_id]
        if not ballots:
            means = {c: 0.0 for c in Criterion}
        else:
            means = {
                c: sum(b.scores[c] for b in ballots) / len(ballots)
                for c in Criterion
            }
        return ChallengeScore(
            challenge_id=challenge_id, ballots=len(ballots), means=means
        )

    def ranking(self) -> List[ChallengeScore]:
        """All challenges sorted by overall score, best first."""
        scores = [self.results(c) for c in self._challenges]
        scores.sort(key=lambda s: (-s.overall, s.challenge_id))
        return scores

    def winners(self, k: int = 1) -> List[ChallengeScore]:
        """The top-``k`` challenges — "selected as showcases"."""
        if k < 1:
            raise VotingError(f"k must be >= 1, got {k}")
        return self.ranking()[:k]
