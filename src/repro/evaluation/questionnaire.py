"""A generic Likert questionnaire engine.

Sec. V-B mentions "additional questions [that] helped to understand the
acceptance and the adequacy of the plenary tuning among technical and
managerial sections".  :class:`Questionnaire` generalises the hard-coded
survey: arbitrary Likert items, simulated responses driven by a
per-respondent disposition, and aggregation with per-group breakdowns
(the technical-vs-managerial split the organisers cared about).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import RngHub

__all__ = ["LikertItem", "QuestionnaireResult", "Questionnaire"]

#: 5-point Likert scale: 1 = strongly disagree ... 5 = strongly agree.
LIKERT_MIN, LIKERT_MAX = 1, 5


@dataclass(frozen=True)
class LikertItem:
    """One agree/disagree statement.

    ``loading`` couples the item to the respondent's disposition in
    [-1, 1]: +1 means full agreement tracks a positive disposition,
    -1 means the item is reverse-coded ("the meeting wasted my time").
    """

    item_id: str
    statement: str
    loading: float = 1.0

    def __post_init__(self) -> None:
        if not self.item_id:
            raise ConfigurationError("item id must be non-empty")
        if not -1.0 <= self.loading <= 1.0:
            raise ConfigurationError(
                f"{self.item_id}: loading must be in [-1,1], got {self.loading}"
            )


@dataclass
class QuestionnaireResult:
    """All responses, indexable by item and respondent group."""

    items: List[LikertItem]
    responses: Dict[str, Dict[str, int]]  # respondent -> item -> score
    groups: Dict[str, str]  # respondent -> group label

    def respondent_count(self) -> int:
        return len(self.responses)

    def mean_score(self, item_id: str, group: Optional[str] = None) -> float:
        scores = [
            by_item[item_id]
            for respondent, by_item in self.responses.items()
            if group is None or self.groups.get(respondent) == group
        ]
        if not scores:
            raise ConfigurationError(
                f"no responses for item {item_id!r}"
                + (f" in group {group!r}" if group else "")
            )
        return sum(scores) / len(scores)

    def agreement_fraction(
        self, item_id: str, group: Optional[str] = None
    ) -> float:
        """Fraction scoring 4 or 5 ("agree" / "strongly agree")."""
        scores = [
            by_item[item_id]
            for respondent, by_item in self.responses.items()
            if group is None or self.groups.get(respondent) == group
        ]
        if not scores:
            raise ConfigurationError(f"no responses for item {item_id!r}")
        return sum(1 for s in scores if s >= 4) / len(scores)

    def group_gap(self, item_id: str, group_a: str, group_b: str) -> float:
        """Mean-score difference between two groups on one item."""
        return self.mean_score(item_id, group_a) - self.mean_score(
            item_id, group_b
        )

    def item_table(self) -> List[Tuple[str, float, float]]:
        """(item, mean, agreement) rows in item order."""
        return [
            (item.item_id, self.mean_score(item.item_id),
             self.agreement_fraction(item.item_id))
            for item in self.items
        ]


class Questionnaire:
    """Simulates Likert responses from respondent dispositions.

    A respondent with disposition ``d`` in [0, 1] answers an item with
    loading ``l`` around ``3 + 2 * l * (2d - 1)`` plus noise, clipped to
    the 1-5 scale — so an enthusiastic respondent (d near 1) agrees with
    positively-loaded items and rejects reverse-coded ones.
    """

    def __init__(
        self,
        items: Sequence[LikertItem],
        hub: RngHub,
        noise_sd: float = 0.7,
    ) -> None:
        if not items:
            raise ConfigurationError("a questionnaire needs at least one item")
        ids = [item.item_id for item in items]
        if len(ids) != len(set(ids)):
            raise ConfigurationError("duplicate item ids")
        if noise_sd < 0:
            raise ConfigurationError(f"noise_sd must be >= 0, got {noise_sd}")
        self.items = list(items)
        self._rng = hub.stream("questionnaire")
        self.noise_sd = noise_sd

    def expected_score(self, item: LikertItem, disposition: float) -> float:
        """Noise-free expected Likert score."""
        if not 0.0 <= disposition <= 1.0:
            raise ConfigurationError(
                f"disposition must be in [0,1], got {disposition}"
            )
        return 3.0 + 2.0 * item.loading * (2.0 * disposition - 1.0)

    def administer(
        self,
        dispositions: Mapping[str, float],
        groups: Optional[Mapping[str, str]] = None,
    ) -> QuestionnaireResult:
        """Collect one response per respondent per item."""
        if not dispositions:
            raise ConfigurationError("no respondents")
        responses: Dict[str, Dict[str, int]] = {}
        for respondent in sorted(dispositions):
            disposition = dispositions[respondent]
            answers = {}
            for item in self.items:
                raw = self.expected_score(item, disposition) + self._rng.normal(
                    0.0, self.noise_sd
                )
                answers[item.item_id] = min(
                    LIKERT_MAX, max(LIKERT_MIN, round(raw))
                )
            responses[respondent] = answers
        return QuestionnaireResult(
            items=list(self.items),
            responses=responses,
            groups=dict(groups or {}),
        )


def plenary_acceptance_items() -> List[LikertItem]:
    """The Sec. V-B "additional questions" as Likert items."""
    return [
        LikertItem(
            "progress_significant",
            "The hackathon generated significant progress for my work.",
        ),
        LikertItem(
            "continue_approach",
            "We should run the hackathon again at the next plenary.",
        ),
        LikertItem(
            "balance_adequate",
            "The balance between technical and managerial sessions was "
            "adequate.",
        ),
        LikertItem(
            "waste_of_time",
            "This plenary was mostly a waste of my time.",
            loading=-1.0,
        ),
    ]
