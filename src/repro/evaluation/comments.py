"""Free-text participant comments and their sentiment (paper Fig. 4).

Fig. 4 of the paper shows participants' comments on the first hackathon
— overwhelmingly positive.  We regenerate that artefact synthetically:
:class:`CommentGenerator` produces comments whose tone follows the
commenter's realised engagement, and :class:`SentimentLexicon` scores
them back, closing the loop so benches can verify the distribution's
shape without any natural-language model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.rng import RngHub

__all__ = ["Comment", "SentimentLexicon", "CommentGenerator", "sentiment_histogram"]


@dataclass(frozen=True)
class Comment:
    """One anonymous free-text survey comment."""

    text: str
    context: str = "hackathon"


#: Comment templates in the spirit of the paper's Fig. 4 screenshots.
POSITIVE_TEMPLATES: Tuple[str, ...] = (
    "Great to finally work hands-on with the other partners' tools.",
    "Excellent initiative, we made more progress in four hours than in months.",
    "Very good way to understand what the use cases really need.",
    "The hackathon was fun and extremely useful for our case study.",
    "Impressive demos; we found a promising integration with another tool.",
    "Best plenary so far thanks to the hackathon day.",
    "Good energy, concrete results and new contacts across the consortium.",
    "We will continue the collaboration started during the challenge.",
)

NEUTRAL_TEMPLATES: Tuple[str, ...] = (
    "Interesting format, although the scope of our challenge was unclear.",
    "Reasonable session, but more preparation material would help.",
    "The time box was tight; we finished only part of the experiment.",
    "Mixed results for our team, worth trying again next plenary.",
)

NEGATIVE_TEMPLATES: Tuple[str, ...] = (
    "Too little time to achieve anything meaningful, frustrating overall.",
    "The meeting was again mostly administrative and a waste of my time.",
    "Poor match between our challenge and the subscribed tools, disappointing.",
    "Exhausting day with weak outcomes for our use case.",
)


class SentimentLexicon:
    """A tiny polarity lexicon sufficient for the template vocabulary.

    ``score`` returns the mean polarity of matched words in [-1, 1];
    texts with no matched words score 0.0 (neutral).
    """

    DEFAULT_POLARITY: Dict[str, float] = {
        # Positive vocabulary.
        "great": 1.0, "excellent": 1.0, "good": 0.7, "best": 1.0,
        "fun": 0.8, "useful": 0.8, "impressive": 0.9, "promising": 0.7,
        "progress": 0.6, "concrete": 0.5, "energy": 0.4, "finally": 0.3,
        "continue": 0.4, "new": 0.3,
        # Negative vocabulary.
        "frustrating": -1.0, "waste": -1.0, "poor": -0.9,
        "disappointing": -0.9, "exhausting": -0.7, "weak": -0.7,
        "administrative": -0.4, "tight": -0.3, "unclear": -0.4,
        "mixed": -0.2,
    }

    def __init__(self, polarity: Dict[str, float] = None) -> None:
        self._polarity = dict(
            self.DEFAULT_POLARITY if polarity is None else polarity
        )
        for word, value in self._polarity.items():
            if not -1.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"polarity for {word!r} must be in [-1,1], got {value}"
                )

    def score(self, text: str) -> float:
        words = [w.strip(".,;:!?()").lower() for w in text.split()]
        matched = [self._polarity[w] for w in words if w in self._polarity]
        if not matched:
            return 0.0
        return sum(matched) / len(matched)

    def label(self, text: str, threshold: float = 0.15) -> str:
        """Classify a text as ``positive``, ``neutral`` or ``negative``."""
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        score = self.score(text)
        if score > threshold:
            return "positive"
        if score < -threshold:
            return "negative"
        return "neutral"


class CommentGenerator:
    """Generates engagement-driven comments.

    A commenter with engagement ``e`` picks from the positive pool with
    probability rising in ``e``, the negative pool with probability
    falling in ``e``, otherwise neutral.  The mapping is asymmetric
    (positivity bias): written survey feedback skews politer than the
    underlying engagement, a well-documented survey artefact — and with
    the hackathon engagement levels of technical staff (~0.9) it yields
    the overwhelmingly-positive distribution of Fig. 4.
    """

    def __init__(self, hub: RngHub) -> None:
        self._rng = hub.stream("comments")

    def band_probabilities(self, engagement: float) -> Tuple[float, float, float]:
        """(positive, neutral, negative) probabilities for ``engagement``."""
        if not 0.0 <= engagement <= 1.0:
            raise ConfigurationError(
                f"engagement must be in [0,1], got {engagement}"
            )
        positive = engagement**1.2
        negative = (1.0 - engagement) ** 2.2
        neutral = max(0.0, 1.0 - positive - negative)
        total = positive + neutral + negative
        return positive / total, neutral / total, negative / total

    def generate(self, engagement: float, context: str = "hackathon") -> Comment:
        """Generate one comment for a participant at ``engagement``."""
        p_pos, p_neu, _ = self.band_probabilities(engagement)
        u = self._rng.random()
        if u < p_pos:
            pool: Sequence[str] = POSITIVE_TEMPLATES
        elif u < p_pos + p_neu:
            pool = NEUTRAL_TEMPLATES
        else:
            pool = NEGATIVE_TEMPLATES
        text = pool[int(self._rng.integers(0, len(pool)))]
        return Comment(text=text, context=context)

    def generate_all(
        self, engagements: Dict[str, float], context: str = "hackathon"
    ) -> List[Comment]:
        """One comment per member, iterated in sorted-id order."""
        return [
            self.generate(engagements[mid], context)
            for mid in sorted(engagements)
        ]


def sentiment_histogram(
    comments: Sequence[Comment], lexicon: SentimentLexicon = None
) -> Dict[str, int]:
    """Counts of positive/neutral/negative labels over ``comments``."""
    lexicon = lexicon or SentimentLexicon()
    counts: Counter = Counter(lexicon.label(c.text) for c in comments)
    return {label: counts.get(label, 0) for label in ("positive", "neutral", "negative")}
