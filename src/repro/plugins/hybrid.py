"""Hybrid hackathons: per-participant attendance-mode lanes.

The builtin ``hybrid`` meeting mode applies one blended factor set to
everyone.  Studies of hybrid community events (arXiv:2508.07301) find
the reality is *bimodal*: on-site participants collaborate at nearly
face-to-face depth while remote participants face virtual-lane
constraints, and cross-lane pairs land in between.

This family sets ``remote_share`` on hybrid plenaries: each attendee is
assigned a lane by a seeded draw from the dedicated ``hybrid_lanes``
RNG substream — remote members engage and interact at virtual-lane
depth, on-site members at face-to-face depth, and mixed pairs at the
mean of their lane factors.  The headline shape is monotone: mean
meeting engagement at ``remote_share=s`` sits strictly between the
all-on-site (``s=0``) and all-remote (``s=1``) endpoints.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from repro.registry import register_scenario, register_sweep_parameter
from repro.simulation.scenario import (
    PlenarySpec,
    Scenario,
    megamart_timeline,
)

__all__ = [
    "PLUGIN_NAME",
    "HEADLINE_KPI",
    "hybrid_timeline",
    "headline_check",
]

PLUGIN_NAME = "hybrid-hackathons"
HEADLINE_KPI = "mean_meeting_engagement"


def _with_remote_share(
    base: Scenario, share: Optional[float], suffix: str
) -> Scenario:
    plenaries = tuple(
        replace(p, mode="hybrid", remote_share=share)
        if p.is_hackathon else p
        for p in base.plenaries
    )
    return replace(
        base, name=f"{base.name}-{suffix}", plenaries=plenaries
    )


def hybrid_timeline(seed: int = 0, remote_share: float = 0.5) -> Scenario:
    """The paper's timeline with hybrid hackathons at ``remote_share``."""
    return _with_remote_share(
        megamart_timeline(seed=seed), remote_share,
        f"hybrid{remote_share:g}",
    )


@register_scenario(
    "hybrid-balanced", plugin=PLUGIN_NAME,
    description="Hybrid hackathons with half the roster joining remotely "
                "(per-participant lanes, arXiv:2508.07301)",
)
def hybrid_balanced(seed: int = 0) -> Scenario:
    return hybrid_timeline(seed=seed, remote_share=0.5)


@register_scenario(
    "hybrid-remote-heavy", plugin=PLUGIN_NAME,
    description="Hybrid hackathons with 80% of the roster remote — the "
                "satellite-site pattern of distributed consortia",
)
def hybrid_remote_heavy(seed: int = 0) -> Scenario:
    return hybrid_timeline(seed=seed, remote_share=0.8)


@register_sweep_parameter(
    "remote-share", (0.0, 0.25, 0.5, 0.75, 1.0),
    label=lambda v: f"{100 * v:g}% remote",
    plugin=PLUGIN_NAME, supports_base=True,
    description="Sweep the fraction of hackathon attendees joining "
                "through the remote lane",
)
def remote_share_sweep(
    value: float, seed: int, base: Optional[Scenario] = None
) -> Scenario:
    scenario = (
        base.with_seed(seed) if base is not None
        else megamart_timeline(seed=seed)
    )
    return replace(
        _with_remote_share(scenario, value, f"remote{value:g}"),
        plugin=PLUGIN_NAME,
    )


def headline_check(seed: int = 0) -> Dict[str, Any]:
    """Engagement at a 50% remote share sits between the endpoints.

    Runs the all-on-site, balanced-hybrid and all-remote variants of the
    paper's timeline; ``ok`` is True when mean meeting engagement is
    strictly ordered ``remote=1 < remote=0.5 < remote=0``.
    """
    from repro.simulation.runner import LongitudinalRunner

    def engagement(share: float) -> float:
        scenario = hybrid_timeline(seed=seed, remote_share=share)
        return LongitudinalRunner(scenario).run().totals[HEADLINE_KPI]

    onsite, balanced, remote = (
        engagement(0.0), engagement(0.5), engagement(1.0)
    )
    return {
        "plugin": PLUGIN_NAME,
        "kpi": HEADLINE_KPI,
        "onsite_value": onsite,
        "plugin_value": balanced,
        "remote_value": remote,
        "ok": remote < balanced < onsite,
    }
