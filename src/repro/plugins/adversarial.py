"""Adversarial participants: free-riders and knowledge withholders.

Hackathon studies assume everyone plays along; large funded consortia
cannot.  Two misbehaviour archetypes matter for the paper's KPIs:

* **Free-riders** attend but barely participate — their engagement and
  interaction depth drop to ``free_rider_factor`` of normal, which
  drags down everything they touch (tie formation, transfer, demos).
* **Knowledge withholders** participate energetically but guard their
  expertise: others absorb from them at only ``withholding_factor`` of
  the normal transfer rate, while they keep absorbing at full rate —
  an asymmetry invisible in engagement metrics but corrosive to
  knowledge transfer.

Both rosters are drawn per scenario from dedicated RNG substreams
(``free_riders`` / ``withholding``), so the classic streams — and with
them every pre-existing scenario's KPIs — are untouched.  The headline
shape: either archetype strictly reduces total knowledge transfer
against the clean timeline, and withholding does so while engagement
stays essentially intact.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from repro.registry import register_scenario, register_sweep_parameter
from repro.simulation.scenario import Scenario, megamart_timeline

__all__ = [
    "PLUGIN_NAME",
    "HEADLINE_KPI",
    "free_rider_timeline",
    "withholding_timeline",
    "headline_check",
]

PLUGIN_NAME = "adversarial-participants"
HEADLINE_KPI = "knowledge_transferred"


def free_rider_timeline(
    seed: int = 0, share: float = 0.2, factor: float = 0.35
) -> Scenario:
    """The paper's timeline with a seeded share of free-riders."""
    base = megamart_timeline(seed=seed)
    return replace(
        base,
        name=f"{base.name}-freeride{share:g}",
        free_rider_share=share,
        free_rider_factor=factor,
    )


def withholding_timeline(
    seed: int = 0, share: float = 0.2, factor: float = 0.2
) -> Scenario:
    """The paper's timeline with a seeded share of withholders."""
    base = megamart_timeline(seed=seed)
    return replace(
        base,
        name=f"{base.name}-withhold{share:g}",
        withholding_share=share,
        withholding_factor=factor,
    )


@register_scenario(
    "free-riders", plugin=PLUGIN_NAME,
    description="Paper timeline with 20% free-riders: present but "
                "disengaged, interacting at a fraction of normal depth",
)
def free_riders(seed: int = 0) -> Scenario:
    return free_rider_timeline(seed=seed)


@register_scenario(
    "knowledge-withholding", plugin=PLUGIN_NAME,
    description="Paper timeline with 20% knowledge withholders: engaged "
                "participants others can barely learn from",
)
def knowledge_withholding(seed: int = 0) -> Scenario:
    return withholding_timeline(seed=seed)


@register_sweep_parameter(
    "free-rider-share", (0.0, 0.1, 0.2, 0.4),
    label=lambda v: f"{100 * v:g}% free-riders",
    plugin=PLUGIN_NAME, supports_base=True,
    description="Sweep the fraction of the roster free-riding through "
                "every plenary",
)
def free_rider_sweep(
    value: float, seed: int, base: Optional[Scenario] = None
) -> Scenario:
    scenario = (
        base.with_seed(seed) if base is not None
        else megamart_timeline(seed=seed)
    )
    return replace(
        scenario,
        name=f"{scenario.name}-freeride{value:g}",
        free_rider_share=value,
        plugin=PLUGIN_NAME,
    )


def headline_check(seed: int = 0) -> Dict[str, Any]:
    """Both archetypes strictly reduce total knowledge transfer.

    ``ok`` additionally requires the withholding signature: its mean
    meeting engagement stays within 5% of the clean timeline even as
    transfer drops — misbehaviour that engagement dashboards miss.
    """
    from repro.simulation.runner import LongitudinalRunner

    clean = LongitudinalRunner(megamart_timeline(seed=seed)).run().totals
    riding = LongitudinalRunner(free_rider_timeline(seed=seed)).run().totals
    holding = LongitudinalRunner(
        withholding_timeline(seed=seed)
    ).run().totals
    engagement_intact = (
        abs(holding["mean_meeting_engagement"]
            - clean["mean_meeting_engagement"])
        <= 0.05 * clean["mean_meeting_engagement"]
    )
    return {
        "plugin": PLUGIN_NAME,
        "kpi": HEADLINE_KPI,
        "reference_value": clean[HEADLINE_KPI],
        "free_rider_value": riding[HEADLINE_KPI],
        "plugin_value": holding[HEADLINE_KPI],
        "ok": (
            riding[HEADLINE_KPI] < clean[HEADLINE_KPI]
            and holding[HEADLINE_KPI] < clean[HEADLINE_KPI]
            and engagement_intact
        ),
    }
