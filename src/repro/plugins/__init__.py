"""Bundled scenario plugins.

Each submodule is a self-contained scenario family registered through
:mod:`repro.registry` — the same decorators third-party plugins use via
the ``repro.plugins`` entry-point group or the ``REPRO_PLUGINS``
environment variable:

* :mod:`repro.plugins.virtual` — virtual hackathons with the reduced
  tie-formation and session-engagement observed by Mendes et al. 2022
  (arXiv:2204.12274), beyond the plain uniform ``virtual`` mode.
* :mod:`repro.plugins.hybrid` — hybrid plenaries with per-participant
  attendance-mode lanes (arXiv:2508.07301).
* :mod:`repro.plugins.adversarial` — adversarial participants:
  free-riders and knowledge withholders.

Every module exposes ``PLUGIN_NAME``, ``HEADLINE_KPI`` and a
``headline_check(seed=...)`` returning the family's characteristic KPI
comparison — the CI smoke test runs one per family on both engines.
Plugin scenarios run on the scalar engine; the batch backend counts
them under ``batch_fallback_total{reason="plugin"}``.
"""

__all__ = ["virtual", "hybrid", "adversarial"]
