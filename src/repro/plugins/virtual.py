"""Virtual hackathons under realistic online-collaboration constraints.

The builtin ``virtual`` timeline models going online purely through the
meeting mode's uniform factors.  Mendes et al.'s systematic mapping of
online hackathons ("Socio-Technical Constraints and Affordances of
Virtual Collaboration", arXiv:2204.12274) reports two effects that the
uniform mode misses: session engagement decays faster without physical
co-presence, and spontaneous tie formation ("hallway" mixing) drops
disproportionately because breakout tools only connect people who
already chose the same room.

This family exposes those as the ``engagement_scale`` /
``mixing_scale`` scenario modifiers stacked on top of the virtual
mode.  ``virtual-constrained`` uses the mapping study's pessimistic
reading, ``virtual-facilitated`` the affordance-aware reading
(dedicated facilitation, persistent channels) that recovers most of the
engagement but not the spontaneous mixing.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from repro.registry import register_scenario, register_sweep_parameter
from repro.simulation.scenario import Scenario, virtual_timeline

__all__ = ["PLUGIN_NAME", "HEADLINE_KPI", "headline_check"]

PLUGIN_NAME = "virtual-hackathons"
#: The constraint stacks *below* the uniform virtual mode: the same
#: timeline, same mode, yet engagement sinks further — tie counts
#: saturate long before engagement does, so engagement is the
#: discriminating KPI.
HEADLINE_KPI = "mean_meeting_engagement"

#: arXiv:2204.12274's pessimistic reading: engagement decays, and
#: breakout-room mixing reaches well under half of hallway mixing.
CONSTRAINED_ENGAGEMENT = 0.7
CONSTRAINED_MIXING = 0.6
#: Affordance-aware reading: facilitation recovers engagement, mixing
#: stays structurally limited.
FACILITATED_ENGAGEMENT = 0.9
FACILITATED_MIXING = 0.7


def _virtual_variant(
    seed: int, suffix: str, engagement: float, mixing: float
) -> Scenario:
    base = virtual_timeline(seed=seed)
    return replace(
        base,
        name=f"{base.name}-{suffix}",
        engagement_scale=engagement,
        mixing_scale=mixing,
    )


@register_scenario(
    "virtual-constrained", plugin=PLUGIN_NAME,
    description="Virtual hackathons under the socio-technical constraints "
                "of arXiv:2204.12274 (reduced engagement and mixing)",
)
def virtual_constrained(seed: int = 0) -> Scenario:
    return _virtual_variant(
        seed, "constrained", CONSTRAINED_ENGAGEMENT, CONSTRAINED_MIXING
    )


@register_scenario(
    "virtual-facilitated", plugin=PLUGIN_NAME,
    description="Virtual hackathons with affordance-aware facilitation: "
                "engagement mostly recovered, mixing still limited",
)
def virtual_facilitated(seed: int = 0) -> Scenario:
    return _virtual_variant(
        seed, "facilitated", FACILITATED_ENGAGEMENT, FACILITATED_MIXING
    )


@register_sweep_parameter(
    "virtual-engagement", (0.5, 0.7, 0.9, 1.0),
    label=lambda v: f"engagement x{v:g}",
    plugin=PLUGIN_NAME, supports_base=True,
    description="Sweep the session-engagement retention of online "
                "delivery (1.0 = the plain uniform virtual mode)",
)
def virtual_engagement_sweep(
    value: float, seed: int, base: Optional[Scenario] = None
) -> Scenario:
    scenario = base.with_seed(seed) if base is not None else (
        virtual_timeline(seed=seed)
    )
    return replace(
        scenario,
        name=f"{scenario.name}-eng{value:g}",
        engagement_scale=value,
        plugin=PLUGIN_NAME,
    )


def headline_check(seed: int = 0) -> Dict[str, Any]:
    """Constrained virtual events engage below the uniform virtual mode.

    Returns the headline KPI for the constrained family next to the
    plain uniform-mode virtual baseline; ``ok`` is True when the
    socio-technical constraints bite beyond what the mode alone
    predicts (strictly lower mean meeting engagement).
    """
    from repro.simulation.runner import LongitudinalRunner

    plugin_totals = LongitudinalRunner(
        virtual_constrained(seed=seed)
    ).run().totals
    reference_totals = LongitudinalRunner(
        virtual_timeline(seed=seed)
    ).run().totals
    plugin_value = plugin_totals[HEADLINE_KPI]
    reference_value = reference_totals[HEADLINE_KPI]
    return {
        "plugin": PLUGIN_NAME,
        "kpi": HEADLINE_KPI,
        "plugin_value": plugin_value,
        "reference_value": reference_value,
        "ok": plugin_value < reference_value,
    }
