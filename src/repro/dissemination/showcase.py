"""Showcase registry: from winning demos to dissemination records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.outcomes import HackathonOutcome
from repro.dissemination.channels import CHANNEL_PROFILES, Channel
from repro.errors import ConfigurationError
from repro.rng import RngHub

__all__ = ["Showcase", "DisseminationRecord", "DisseminationRegistry"]


@dataclass(frozen=True)
class Showcase:
    """A demo selected for dissemination."""

    showcase_id: str
    event_id: str
    challenge_id: str
    quality: float
    readiness: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.quality <= 1.0:
            raise ConfigurationError(
                f"{self.showcase_id}: quality must be in [0,1], "
                f"got {self.quality}"
            )


@dataclass(frozen=True)
class DisseminationRecord:
    """One publication of a showcase through one channel."""

    showcase_id: str
    channel: Channel
    reach: int


class DisseminationRegistry:
    """Tracks showcases and their dissemination across the project."""

    def __init__(self, hub: RngHub) -> None:
        self._rng = hub.stream("dissemination")
        self._showcases: Dict[str, Showcase] = {}
        self._records: List[DisseminationRecord] = []

    # -- intake ------------------------------------------------------------

    def register_outcome(self, outcome: HackathonOutcome) -> List[Showcase]:
        """Register an event's audience-voted showcases.

        Mirrors the paper's rule: the best demos, as ranked by the
        anonymous vote (``outcome.showcase_ids``), become showcases.
        """
        registered = []
        for challenge_id in outcome.showcase_ids:
            demo = outcome.demo_for(challenge_id)
            if demo is None:
                continue
            showcase = Showcase(
                showcase_id=f"{outcome.event_id}:{challenge_id}",
                event_id=outcome.event_id,
                challenge_id=challenge_id,
                quality=demo.overall_quality,
                readiness=demo.readiness,
            )
            self.add(showcase)
            registered.append(showcase)
        return registered

    def add(self, showcase: Showcase) -> None:
        if showcase.showcase_id in self._showcases:
            raise ConfigurationError(
                f"duplicate showcase {showcase.showcase_id!r}"
            )
        self._showcases[showcase.showcase_id] = showcase

    # -- publication ---------------------------------------------------------

    def publish(
        self, showcase_id: str, channel: Channel
    ) -> DisseminationRecord:
        """Publish one showcase through one channel; returns the record.

        Reach is Poisson-distributed around the channel's
        quality-adjusted expectation.
        """
        showcase = self.showcase(showcase_id)
        profile = CHANNEL_PROFILES[channel]
        reach = int(self._rng.poisson(profile.expected_reach(showcase.quality)))
        record = DisseminationRecord(
            showcase_id=showcase_id, channel=channel, reach=reach
        )
        self._records.append(record)
        return record

    def publish_everywhere(
        self, showcase_id: str, channels: Optional[Iterable[Channel]] = None
    ) -> List[DisseminationRecord]:
        """Publish one showcase through every (or the given) channel."""
        return [
            self.publish(showcase_id, channel)
            for channel in (channels if channels is not None else Channel)
        ]

    # -- queries ----------------------------------------------------------

    def showcase(self, showcase_id: str) -> Showcase:
        try:
            return self._showcases[showcase_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown showcase {showcase_id!r}"
            ) from None

    @property
    def showcases(self) -> List[Showcase]:
        return [self._showcases[k] for k in sorted(self._showcases)]

    @property
    def records(self) -> List[DisseminationRecord]:
        return list(self._records)

    def total_reach(self) -> int:
        return sum(r.reach for r in self._records)

    def reach_by_channel(self) -> Dict[Channel, int]:
        out = {channel: 0 for channel in Channel}
        for record in self._records:
            out[record.channel] += record.reach
        return out

    def best_showcase(self) -> Optional[Showcase]:
        if not self._showcases:
            return None
        return max(
            self.showcases, key=lambda s: (s.quality, s.showcase_id)
        )
