"""Dissemination substrate: showcases, channels, the EC review meeting.

Public API:

* :class:`Showcase`, :class:`DisseminationRegistry`,
  :class:`DisseminationRecord`
* :class:`Channel`, :class:`ChannelProfile`
* :class:`ReviewMeeting`, :class:`ReviewVerdict`, :class:`ReviewerScore`
"""

from repro.dissemination.channels import CHANNEL_PROFILES, Channel, ChannelProfile
from repro.dissemination.review import ReviewMeeting, ReviewVerdict, ReviewerScore
from repro.dissemination.showcase import (
    DisseminationRecord,
    DisseminationRegistry,
    Showcase,
)

__all__ = [
    "CHANNEL_PROFILES",
    "Channel",
    "ChannelProfile",
    "DisseminationRecord",
    "DisseminationRegistry",
    "ReviewMeeting",
    "ReviewVerdict",
    "ReviewerScore",
    "Showcase",
]
