"""Dissemination channels for hackathon showcases.

Paper Sec. V-B / VI: "The best demos/presentations voted by the audience
are selected as showcases for different project dissemination
activities" and "the best hackathon results of each plenary meeting have
been selected for dissemination activities".

Channels differ in audience reach and in how much a showcase's quality
matters (a conference talk lives or dies on content; a newsletter blurb
mostly on reach).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Channel", "ChannelProfile", "CHANNEL_PROFILES"]


class Channel(enum.Enum):
    """Where a showcase can be disseminated."""

    PROJECT_WEBSITE = "project_website"
    NEWSLETTER = "newsletter"
    CONFERENCE = "conference"
    REVIEW_MEETING = "review_meeting"
    SOCIAL_MEDIA = "social_media"


@dataclass(frozen=True)
class ChannelProfile:
    """Audience model of one channel.

    ``base_reach`` is the expected audience; ``quality_elasticity`` is
    how strongly showcase quality scales that reach (0 = reach is fixed,
    1 = reach fully proportional to quality).
    """

    base_reach: int
    quality_elasticity: float

    def __post_init__(self) -> None:
        if self.base_reach < 1:
            raise ConfigurationError(
                f"base_reach must be >= 1, got {self.base_reach}"
            )
        if not 0.0 <= self.quality_elasticity <= 1.0:
            raise ConfigurationError(
                f"quality_elasticity must be in [0,1], "
                f"got {self.quality_elasticity}"
            )

    def expected_reach(self, quality: float) -> float:
        """Expected audience for a showcase of the given quality."""
        if not 0.0 <= quality <= 1.0:
            raise ConfigurationError(f"quality must be in [0,1], got {quality}")
        return self.base_reach * (
            (1.0 - self.quality_elasticity) + self.quality_elasticity * quality
        )


CHANNEL_PROFILES = {
    Channel.PROJECT_WEBSITE: ChannelProfile(base_reach=400, quality_elasticity=0.3),
    Channel.NEWSLETTER: ChannelProfile(base_reach=250, quality_elasticity=0.2),
    Channel.CONFERENCE: ChannelProfile(base_reach=120, quality_elasticity=0.8),
    Channel.REVIEW_MEETING: ChannelProfile(base_reach=15, quality_elasticity=0.5),
    Channel.SOCIAL_MEDIA: ChannelProfile(base_reach=600, quality_elasticity=0.6),
}
