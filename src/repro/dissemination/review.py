"""The official project review meeting.

Paper Sec. VI: the best hackathon results "were presented in the first
official review meeting of the project, where both the approach and the
results received the appreciation of the project reviewers."

:class:`ReviewMeeting` models the EC review panel: a few reviewers with
individually drawn scepticism score (a) the presented showcases and
(b) the hackathon *process* itself (did the event satisfy its five
prerequisites? did it feed the application matrix?).  The verdict is the
panel's mean appreciation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.prerequisites import PrerequisiteReport
from repro.dissemination.showcase import Showcase
from repro.errors import ConfigurationError
from repro.rng import RngHub

__all__ = ["ReviewerScore", "ReviewVerdict", "ReviewMeeting"]


@dataclass(frozen=True)
class ReviewerScore:
    """One reviewer's appreciation, in [0, 1]."""

    reviewer_id: str
    results_score: float
    approach_score: float

    @property
    def overall(self) -> float:
        return 0.5 * (self.results_score + self.approach_score)


@dataclass(frozen=True)
class ReviewVerdict:
    """The panel's aggregated outcome."""

    scores: List[ReviewerScore]
    mean_results: float
    mean_approach: float

    @property
    def mean_overall(self) -> float:
        return 0.5 * (self.mean_results + self.mean_approach)

    @property
    def appreciated(self) -> bool:
        """The paper's reported outcome: panel appreciation.

        We call the review "appreciated" when the panel's mean overall
        score clears 0.6 — a clearly positive review, not a borderline
        pass.
        """
        return self.mean_overall >= 0.6


class ReviewMeeting:
    """Simulates an EC project review of the hackathon initiative.

    Parameters
    ----------
    n_reviewers:
        Panel size (EC reviews typically use 2-4 experts).
    scepticism_sd:
        Spread of reviewer scepticism; each reviewer's scores are
        shifted down by their own scepticism draw (clipped at 0).
    """

    def __init__(
        self, hub: RngHub, n_reviewers: int = 3, scepticism_sd: float = 0.08
    ) -> None:
        if n_reviewers < 1:
            raise ConfigurationError(
                f"n_reviewers must be >= 1, got {n_reviewers}"
            )
        if scepticism_sd < 0:
            raise ConfigurationError(
                f"scepticism_sd must be >= 0, got {scepticism_sd}"
            )
        self._rng = hub.stream("review")
        self.n_reviewers = n_reviewers
        self.scepticism_sd = scepticism_sd

    def review(
        self,
        showcases: Sequence[Showcase],
        prerequisite_reports: Sequence[PrerequisiteReport],
        applications_started: int,
    ) -> ReviewVerdict:
        """Score the presented results and the approach.

        *Results* scoring reflects the quality of the presented
        showcases; *approach* scoring reflects process health: the
        fraction of satisfied prerequisites and whether the initiative
        moved the tool-to-case-study matrix at all (the project's
        stated progress gap).
        """
        if not showcases:
            raise ConfigurationError("a review needs at least one showcase")
        mean_quality = sum(s.quality for s in showcases) / len(showcases)
        prereq_health = (
            sum(1 for r in prerequisite_reports if r.satisfied)
            / len(prerequisite_reports)
            if prerequisite_reports
            else 0.0
        )
        progress_signal = 1.0 if applications_started > 0 else 0.3
        approach_base = 0.6 * prereq_health + 0.4 * progress_signal

        scores = []
        for i in range(self.n_reviewers):
            scepticism = abs(float(self._rng.normal(0.0, self.scepticism_sd)))
            results = float(
                np.clip(mean_quality - scepticism + self._rng.normal(0, 0.03),
                        0.0, 1.0)
            )
            approach = float(
                np.clip(approach_base - scepticism + self._rng.normal(0, 0.03),
                        0.0, 1.0)
            )
            scores.append(
                ReviewerScore(
                    reviewer_id=f"reviewer{i}",
                    results_score=results,
                    approach_score=approach,
                )
            )
        return ReviewVerdict(
            scores=scores,
            mean_results=sum(s.results_score for s in scores) / len(scores),
            mean_approach=sum(s.approach_score for s in scores) / len(scores),
        )
